//! Figure 3 — 8-byte allreduce latency vs node count under injection.
//!
//! The collective-microbenchmark figure: mean latency of a small allreduce
//! as the machine grows, for the noiseless baseline and each canonical 2.5%
//! signature. The paper's shape: baseline grows ~log P; noisy curves
//! diverge, with the 10 Hz/2500 µs signature orders of magnitude worse at
//! scale than 1 kHz/25 µs at the *same* net intensity.

use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_bench::{canonical_injections, prologue, scale_ladder, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::report::{f, Table};

/// Repetitions to average over (each is compute(0)+allreduce).
const REPS: usize = 500;

fn main() {
    prologue("fig3_allreduce_scale");
    let injections = canonical_injections();
    let scales = scale_ladder();
    // Back-to-back allreduces with no compute between them: the makespan
    // divided by repetitions is the pipelined per-operation latency.
    let w = BspSynthetic::new(REPS, 0).with_sync(SyncKind::Allreduce { bytes: 8 });

    // One campaign over scales x signatures; the per-scale baseline is
    // simulated once and shared by all three signatures at that scale.
    let mut campaign = Campaign::new();
    let wid = campaign.add_workload(&w);
    for &p in &scales {
        for inj in &injections {
            campaign.add(wid, ExperimentSpec::flat(p, seed()), inj.clone());
        }
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("allreduce sweep failed: {e}"));
    let rec = |si: usize, ij: usize| &run.results[si * injections.len() + ij];

    let mut header = vec!["nodes".to_string(), "baseline (us)".to_string()];
    for inj in &injections {
        header.push(format!("{} (us)", inj.label()));
        header.push(format!("{} slow%", inj.label()));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut tab = Table::new(
        "Fig 3: 8-byte allreduce latency vs scale (2.5% net noise)",
        &hdr,
    );

    for (si, &p) in scales.iter().enumerate() {
        let base = rec(si, 0).baseline.makespan as f64 / REPS as f64;
        let mut row = vec![p.to_string(), f(base / 1000.0)];
        for ij in 0..injections.len() {
            let noisy = rec(si, ij).run.makespan as f64 / REPS as f64;
            row.push(f(noisy / 1000.0));
            row.push(f((noisy - base) / base * 100.0));
        }
        tab.row(&row);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
    println!(
        "note: for a back-to-back collective stream (no compute between operations), the\n\
         chain can be stalled by noise on ANY node at ANY time, so the expected stall\n\
         approaches the union of all nodes' noise and pulse *arrival rate* matters as\n\
         much as pulse size. Once compute separates the collectives (Figs 5-9), long\n\
         pulses dominate — the paper's application-level result."
    );
}

//! Figure 3 — 8-byte allreduce latency vs node count under injection.
//!
//! The collective-microbenchmark figure: mean latency of a small allreduce
//! as the machine grows, for the noiseless baseline and each canonical 2.5%
//! signature. The paper's shape: baseline grows ~log P; noisy curves
//! diverge, with the 10 Hz/2500 µs signature orders of magnitude worse at
//! scale than 1 kHz/25 µs at the *same* net intensity.

use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_bench::{canonical_injections, prologue, scale_ladder, seed};
use ghost_core::experiment::{run_workload, ExperimentSpec};
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};

/// Repetitions to average over (each is compute(0)+allreduce).
const REPS: usize = 500;

fn mean_allreduce_ns(p: usize, inj: &NoiseInjection) -> f64 {
    // Back-to-back allreduces with no compute between them: the makespan
    // divided by repetitions is the pipelined per-operation latency.
    let w = BspSynthetic::new(REPS, 0).with_sync(SyncKind::Allreduce { bytes: 8 });
    let spec = ExperimentSpec::flat(p, seed());
    let r = run_workload(&spec, &w, inj);
    r.makespan as f64 / REPS as f64
}

fn main() {
    prologue("fig3_allreduce_scale");
    let injections = canonical_injections();
    let mut header = vec!["nodes".to_string(), "baseline (us)".to_string()];
    for inj in &injections {
        header.push(format!("{} (us)", inj.label()));
        header.push(format!("{} slow%", inj.label()));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut tab = Table::new(
        "Fig 3: 8-byte allreduce latency vs scale (2.5% net noise)",
        &hdr,
    );

    for p in scale_ladder() {
        let base = mean_allreduce_ns(p, &NoiseInjection::none());
        let mut row = vec![p.to_string(), f(base / 1000.0)];
        for inj in &injections {
            let noisy = mean_allreduce_ns(p, inj);
            row.push(f(noisy / 1000.0));
            row.push(f((noisy - base) / base * 100.0));
        }
        tab.row(&row);
    }
    println!("{}", tab.render());
    println!(
        "note: for a back-to-back collective stream (no compute between operations), the\n\
         chain can be stalled by noise on ANY node at ANY time, so the expected stall\n\
         approaches the union of all nodes' noise and pulse *arrival rate* matters as\n\
         much as pulse size. Once compute separates the collectives (Figs 5-9), long\n\
         pulses dominate — the paper's application-level result."
    );
}

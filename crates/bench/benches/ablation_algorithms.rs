//! Ablation A2 — collective algorithm choice under noise.
//!
//! Recursive doubling vs Rabenseifner allreduce across payload sizes, with
//! and without the harshest 2.5% signature. Algorithm choice shifts the
//! baseline (latency- vs bandwidth-optimal) but noise punishes both through
//! their round structure.

use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_bench::{prologue, quick, seed};
use ghost_core::experiment::{run_workload, ExperimentSpec};
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};
use ghost_engine::time::US;
use ghost_mpi::{AllreduceAlgo, CollectiveConfig};
use ghost_noise::Signature;

const REPS: usize = 50;

fn mean_ns(p: usize, bytes: u64, algo: AllreduceAlgo, inj: &NoiseInjection, seed: u64) -> f64 {
    let w = BspSynthetic::new(REPS, 0).with_sync(SyncKind::Allreduce { bytes });
    let mut spec = ExperimentSpec::flat(p, seed);
    spec.coll = CollectiveConfig {
        allreduce: algo,
        ..CollectiveConfig::default()
    };
    let r = run_workload(&spec, &w, inj);
    r.makespan as f64 / REPS as f64
}

fn main() {
    prologue("ablation_algorithms");
    let p = if quick() { 64 } else { 256 };
    let sig = Signature::new(10.0, 2500 * US);
    let noisy = NoiseInjection::uncoordinated(sig);
    let clean = NoiseInjection::none();

    let mut tab = Table::new(
        format!("A2: allreduce algorithm vs payload at P={p}"),
        &[
            "payload",
            "recdbl base (us)",
            "raben base (us)",
            "recdbl noisy (us)",
            "raben noisy (us)",
        ],
    );
    for bytes in [8u64, 1024, 16 * 1024, 256 * 1024, 1 << 20] {
        let rb = mean_ns(p, bytes, AllreduceAlgo::RecursiveDoubling, &clean, seed());
        let bb = mean_ns(p, bytes, AllreduceAlgo::Rabenseifner, &clean, seed());
        let rn = mean_ns(p, bytes, AllreduceAlgo::RecursiveDoubling, &noisy, seed());
        let bn = mean_ns(p, bytes, AllreduceAlgo::Rabenseifner, &noisy, seed());
        tab.row(&[
            format!("{bytes} B"),
            f(rb / 1000.0),
            f(bb / 1000.0),
            f(rn / 1000.0),
            f(bn / 1000.0),
        ]);
    }
    println!("{}", tab.render());
}

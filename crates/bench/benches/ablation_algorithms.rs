//! Ablation A2 — collective algorithm choice under noise.
//!
//! Recursive doubling vs Rabenseifner allreduce across payload sizes, with
//! and without the harshest 2.5% signature. Algorithm choice shifts the
//! baseline (latency- vs bandwidth-optimal) but noise punishes both through
//! their round structure.

use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_bench::{prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};
use ghost_engine::time::US;
use ghost_mpi::{AllreduceAlgo, CollectiveConfig};
use ghost_noise::Signature;

const REPS: usize = 50;

fn algo_spec(p: usize, algo: AllreduceAlgo, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::flat(p, seed);
    spec.coll = CollectiveConfig {
        allreduce: algo,
        ..CollectiveConfig::default()
    };
    spec
}

fn main() {
    prologue("ablation_algorithms");
    let p = if quick() { 64 } else { 256 };
    let sig = Signature::new(10.0, 2500 * US);
    let noisy = NoiseInjection::uncoordinated(sig);
    let payloads = [8u64, 1024, 16 * 1024, 256 * 1024, 1 << 20];

    // Two scenarios per payload (one per algorithm); the clean columns come
    // from each scenario's memoized baseline, not separate runs.
    let workloads: Vec<BspSynthetic> = payloads
        .iter()
        .map(|&bytes| BspSynthetic::new(REPS, 0).with_sync(SyncKind::Allreduce { bytes }))
        .collect();
    let mut campaign = Campaign::new();
    for w in &workloads {
        let wid = campaign.add_workload(w);
        for algo in [
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::Rabenseifner,
        ] {
            campaign.add(wid, algo_spec(p, algo, seed()), noisy.clone());
        }
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("algorithm sweep failed: {e}"));
    let us = |makespan: u64| f(makespan as f64 / REPS as f64 / 1000.0);

    let mut tab = Table::new(
        format!("A2: allreduce algorithm vs payload at P={p}"),
        &[
            "payload",
            "recdbl base (us)",
            "raben base (us)",
            "recdbl noisy (us)",
            "raben noisy (us)",
        ],
    );
    for (bi, &bytes) in payloads.iter().enumerate() {
        let recdbl = &run.results[bi * 2];
        let raben = &run.results[bi * 2 + 1];
        tab.row(&[
            format!("{bytes} B"),
            us(recdbl.baseline.makespan),
            us(raben.baseline.makespan),
            us(recdbl.run.makespan),
            us(raben.run.makespan),
        ]);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

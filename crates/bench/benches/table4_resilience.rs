//! Table 4 — resilience under injected faults.
//!
//! Three experiments from the `resilience` family:
//!
//! 1. *Delay propagation* — a one-off multi-millisecond stall on one rank
//!    of a tightly-coupled workload; how far does it spread and how much of
//!    it survives into the makespan?
//! 2. *Drop-rate sweep* — lossy links from 0 to 20% drop probability with
//!    retransmission charged to the LogGP budget; slowdown vs drop rate.
//! 3. *Crash survival* — crash one rank early at every scale and tabulate
//!    which runs degrade into typed failures.

use ghost_bench::{pop_workload, prologue, quick, seed};
use ghost_core::experiment::ExperimentSpec;
use ghost_core::resilience::{
    crash_survival, delay_propagation, drop_rate_sweep, drop_rate_table, survival_table,
};
use ghost_engine::time::MS;
use ghost_net::RetryModel;

fn main() {
    prologue("table4_resilience");
    let p = if quick() { 16 } else { 64 };
    let spec = ExperimentSpec::flat(p, seed());
    let pop = pop_workload();

    let curve = delay_propagation(&spec, &pop, p / 2, 2 * MS, 10 * MS)
        .expect("delay propagation must complete");
    println!("{}", curve.table());

    let ppms: &[u32] = if quick() {
        &[0, 10_000, 100_000]
    } else {
        &[0, 1_000, 10_000, 50_000, 100_000, 200_000]
    };
    let records = drop_rate_sweep(&spec, &pop, ppms, RetryModel::default())
        .expect("drop-rate sweep must complete");
    println!("{}", drop_rate_table(&records));

    let scales: &[usize] = if quick() { &[4, 16] } else { &[4, 16, 64, 256] };
    let survival = crash_survival(&spec, &pop, scales, 1, MS);
    println!("{}", survival_table(&survival));
}

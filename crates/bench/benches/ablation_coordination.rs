//! Ablation A1 — coordinated vs uncoordinated noise.
//!
//! The paper's discussion (and the co-scheduling literature it cites)
//! predicts that *when* noise strikes matters as much as how much: if every
//! node loses the same instants (phase-aligned, as under gang-scheduled
//! kernel activity), synchronized applications barely notice; independent
//! phases maximize the max-of-P penalty. Staggered phases are the
//! adversarial worst case: some node is always down.

use ghost_apps::bsp::BspSynthetic;
use ghost_bench::{prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};
use ghost_engine::time::US;
use ghost_noise::model::PhasePolicy;
use ghost_noise::Signature;

fn main() {
    prologue("ablation_coordination");
    let p = if quick() { 64 } else { 512 };
    let spec = ExperimentSpec::flat(p, seed());
    let w = BspSynthetic::new(if quick() { 50 } else { 200 }, 500 * US);
    let sig = Signature::new(10.0, 2500 * US);

    let policies: Vec<(&str, PhasePolicy)> = vec![
        ("aligned (co-scheduled)", PhasePolicy::Aligned),
        ("random (uncoordinated)", PhasePolicy::Random),
        (
            "staggered (worst case)",
            PhasePolicy::Staggered { nodes: p },
        ),
    ];
    // All three policies share the machine and workload: one baseline
    // simulation serves the whole comparison.
    let mut campaign = Campaign::new();
    let wid = campaign.add_workload(&w);
    for (name, policy) in &policies {
        campaign.add_labeled(wid, spec, NoiseInjection::with_policy(sig, *policy), *name);
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("coordination sweep failed: {e}"));

    let mut tab = Table::new(
        format!("A1: phase policy at P={p}, 10Hz x 2.5ms (2.5% net), BSP g=500us"),
        &["phase policy", "slowdown %", "amplification"],
    );
    for ((name, _), rec) in policies.iter().zip(&run.results) {
        tab.row(&[
            (*name).to_string(),
            f(rec.metrics.slowdown_pct()),
            f(rec.metrics.amplification()),
        ]);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

//! Criterion: recorder overhead on the executor hot path.
//!
//! The executor is generic over `Recorder` and always invokes it; a
//! disabled run uses `NullRecorder`, whose empty inlined methods must
//! compile down to (near) nothing. This bench measures the same
//! noise-injected BSP run under three observers:
//!
//! * `null` — the disabled path (what every non-trace experiment pays),
//! * `metrics` — streaming counters/histograms (no per-event allocation),
//! * `vec` — buffer-everything `VecRecorder` (the old `with_trace(true)`).
//!
//! `null` vs the executor's intrinsic cost is the headline: the delta must
//! be statistically negligible. EXPERIMENTS.md records the measured runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_apps::Workload;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_engine::time::US;
use ghost_mpi::Machine;
use ghost_noise::Signature;
use ghost_obs::{MetricsRecorder, NullRecorder, VecRecorder};

const P: usize = 32;
const STEPS: usize = 40;

fn bench_recorder_overhead(c: &mut Criterion) {
    let spec = ExperimentSpec::flat(P, 7);
    let w = BspSynthetic::new(STEPS, 200 * US).with_sync(SyncKind::Allreduce { bytes: 8 });
    let inj = NoiseInjection::uncoordinated(Signature::new(1000.0, 25 * US));
    let net = spec.build_network();
    let model = inj.build();
    let machine = Machine::new(net, model.as_ref(), spec.seed);

    // Span count for throughput reporting (one warmup run).
    let mut probe = VecRecorder::default();
    machine
        .run_with(w.programs(P, spec.seed), &mut probe)
        .unwrap();
    let events = probe.timeline.spans.len() as u64;

    let mut g = c.benchmark_group("executor_recorder");
    g.throughput(Throughput::Elements(events));
    g.bench_function("null", |b| {
        b.iter_batched(
            || w.programs(P, spec.seed),
            |programs| {
                let mut rec = NullRecorder;
                machine.run_with(programs, &mut rec).unwrap().makespan
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("metrics", |b| {
        b.iter_batched(
            || w.programs(P, spec.seed),
            |programs| {
                let mut rec = MetricsRecorder::new();
                machine.run_with(programs, &mut rec).unwrap().makespan
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("vec", |b| {
        b.iter_batched(
            || w.programs(P, spec.seed),
            |programs| {
                let mut rec = VecRecorder::default();
                machine.run_with(programs, &mut rec).unwrap().makespan
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);

//! Ablation A5 — blocking vs nonblocking halo exchange under noise.
//!
//! The classic six-sequential-Sendrecv halo serializes six wire times and
//! exposes six noise-vulnerable windows per step; the Isend/Irecv/WaitAll
//! variant overlaps the transfers. Measures both the baseline gain and how
//! each variant weathers the canonical 2.5% signatures.

use ghost_apps::CthLike;
use ghost_bench::{canonical_injections, prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, t, Table};
use ghost_engine::time::MS;

fn main() {
    prologue("ablation_halo_mode");
    let p = if quick() { 64 } else { 512 };
    let spec = ExperimentSpec::flat(p, seed());
    // Communication-heavy CTH so the halo matters: short compute, big halo.
    let base_cfg = CthLike {
        steps: if quick() { 5 } else { 20 },
        compute: 10 * MS,
        halo_bytes: 1024 * 1024,
        ..CthLike::with_steps(20)
    };
    let blocking = CthLike {
        halo_nonblocking: false,
        ..base_cfg
    };
    let nonblocking = CthLike {
        halo_nonblocking: true,
        ..base_cfg
    };

    // Per variant: one "none" scenario (answered from the memoized
    // baseline) plus the three canonical signatures.
    let modes = [
        ("blocking (6x Sendrecv)", &blocking),
        ("nonblocking (Isend/Irecv/WaitAll)", &nonblocking),
    ];
    let injections = canonical_injections();
    let mut campaign = Campaign::new();
    for (_, cfg) in modes {
        let wid = campaign.add_workload(cfg);
        campaign.add(wid, spec, NoiseInjection::none());
        for inj in &injections {
            campaign.add(wid, spec, inj.clone());
        }
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("halo sweep failed: {e}"));
    let per_mode = injections.len() + 1;

    let mut tab = Table::new(
        format!("A5: halo exchange mode at P={p} (1 MiB halos, 10 ms compute)"),
        &["halo mode", "injection", "T_base", "slowdown %"],
    );
    for (mi, (name, _)) in modes.iter().enumerate() {
        for rec in &run.results[mi * per_mode..(mi + 1) * per_mode] {
            let noiseless = rec.injection == "noiseless";
            tab.row(&[
                (*name).to_owned(),
                if noiseless {
                    "none".to_owned()
                } else {
                    rec.injection.clone()
                },
                t(rec.metrics.base),
                if noiseless {
                    "0".to_owned()
                } else {
                    f(rec.metrics.slowdown_pct())
                },
            ]);
        }
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

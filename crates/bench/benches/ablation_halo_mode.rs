//! Ablation A5 — blocking vs nonblocking halo exchange under noise.
//!
//! The classic six-sequential-Sendrecv halo serializes six wire times and
//! exposes six noise-vulnerable windows per step; the Isend/Irecv/WaitAll
//! variant overlaps the transfers. Measures both the baseline gain and how
//! each variant weathers the canonical 2.5% signatures.

use ghost_apps::CthLike;
use ghost_bench::{canonical_injections, prologue, quick, seed};
use ghost_core::experiment::{compare, ExperimentSpec};
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, t, Table};
use ghost_engine::time::MS;

fn main() {
    prologue("ablation_halo_mode");
    let p = if quick() { 64 } else { 512 };
    let spec = ExperimentSpec::flat(p, seed());
    // Communication-heavy CTH so the halo matters: short compute, big halo.
    let base_cfg = CthLike {
        steps: if quick() { 5 } else { 20 },
        compute: 10 * MS,
        halo_bytes: 1024 * 1024,
        ..CthLike::with_steps(20)
    };

    let mut tab = Table::new(
        format!("A5: halo exchange mode at P={p} (1 MiB halos, 10 ms compute)"),
        &["halo mode", "injection", "T_base", "slowdown %"],
    );
    for nonblocking in [false, true] {
        let cfg = CthLike {
            halo_nonblocking: nonblocking,
            ..base_cfg
        };
        let name = if nonblocking {
            "nonblocking (Isend/Irecv/WaitAll)"
        } else {
            "blocking (6x Sendrecv)"
        };
        let none = compare(&spec, &cfg, &NoiseInjection::none());
        tab.row(&[
            name.to_owned(),
            "none".to_owned(),
            t(none.base),
            "0".to_owned(),
        ]);
        for inj in canonical_injections() {
            let m = compare(&spec, &cfg, &inj);
            tab.row(&[
                name.to_owned(),
                inj.label().to_owned(),
                t(m.base),
                f(m.slowdown_pct()),
            ]);
        }
    }
    println!("{}", tab.render());
}

//! Figure 4 — which collectives suffer most?
//!
//! At a fixed machine size, slowdown of different collective operations and
//! payload sizes under each canonical 2.5% signature. Latency-bound
//! operations (barrier, small allreduce) amplify noise the most; a
//! bandwidth-bound large allreduce hides pulses inside long transfers.

use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_bench::{canonical_injections, prologue, quick, seed};
use ghost_core::campaign::{Campaign, WorkloadId};
use ghost_core::experiment::ExperimentSpec;
use ghost_core::report::{f, Table};

const REPS: usize = 100;

fn main() {
    prologue("fig4_collective_sensitivity");
    let p = if quick() { 64 } else { 1024 };
    let ops: Vec<(&str, SyncKind)> = vec![
        ("barrier", SyncKind::Barrier),
        ("allreduce 8 B", SyncKind::Allreduce { bytes: 8 }),
        ("allreduce 1 KiB", SyncKind::Allreduce { bytes: 1024 }),
        ("allreduce 64 KiB", SyncKind::Allreduce { bytes: 64 * 1024 }),
        ("allreduce 1 MiB", SyncKind::Allreduce { bytes: 1 << 20 }),
    ];
    // Alltoall is measured separately (not a SyncKind) via a tiny script.
    let injections = canonical_injections();
    let spec = ExperimentSpec::flat(p, seed());

    // One workload per operation, one scenario per (operation, signature);
    // each operation's baseline is simulated once.
    let workloads: Vec<BspSynthetic> = ops
        .iter()
        .map(|&(_, sync)| BspSynthetic::new(REPS, 0).with_sync(sync))
        .collect();
    let mut campaign = Campaign::new();
    let ids: Vec<WorkloadId> = workloads.iter().map(|w| campaign.add_workload(w)).collect();
    for &id in &ids {
        for inj in &injections {
            campaign.add(id, spec, inj.clone());
        }
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("collective sweep failed: {e}"));
    let rec = |oi: usize, ij: usize| &run.results[oi * injections.len() + ij];

    let mut header = vec!["operation".to_string(), "baseline (us)".to_string()];
    for inj in &injections {
        header.push(format!("{} slow%", inj.label()));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut tab = Table::new(
        format!("Fig 4: collective sensitivity at P={p} (2.5% net noise)"),
        &hdr,
    );

    for (oi, (name, _)) in ops.iter().enumerate() {
        let base = rec(oi, 0).baseline.makespan as f64 / REPS as f64;
        let mut row = vec![name.to_string(), f(base / 1000.0)];
        for ij in 0..injections.len() {
            row.push(f(rec(oi, ij).metrics.slowdown_pct()));
        }
        tab.row(&row);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

//! Figure 4 — which collectives suffer most?
//!
//! At a fixed machine size, slowdown of different collective operations and
//! payload sizes under each canonical 2.5% signature. Latency-bound
//! operations (barrier, small allreduce) amplify noise the most; a
//! bandwidth-bound large allreduce hides pulses inside long transfers.

use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_bench::{canonical_injections, prologue, quick, seed};
use ghost_core::experiment::{run_workload, ExperimentSpec};
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};

const REPS: usize = 100;

fn mean_op_ns(p: usize, sync: SyncKind, inj: &NoiseInjection) -> f64 {
    let w = BspSynthetic::new(REPS, 0).with_sync(sync);
    let spec = ExperimentSpec::flat(p, seed());
    let r = run_workload(&spec, &w, inj);
    r.makespan as f64 / REPS as f64
}

fn main() {
    prologue("fig4_collective_sensitivity");
    let p = if quick() { 64 } else { 1024 };
    let ops: Vec<(&str, SyncKind)> = vec![
        ("barrier", SyncKind::Barrier),
        ("allreduce 8 B", SyncKind::Allreduce { bytes: 8 }),
        ("allreduce 1 KiB", SyncKind::Allreduce { bytes: 1024 }),
        ("allreduce 64 KiB", SyncKind::Allreduce { bytes: 64 * 1024 }),
        ("allreduce 1 MiB", SyncKind::Allreduce { bytes: 1 << 20 }),
    ];
    // Alltoall is measured separately (not a SyncKind) via a tiny script.
    let injections = canonical_injections();

    let mut header = vec!["operation".to_string(), "baseline (us)".to_string()];
    for inj in &injections {
        header.push(format!("{} slow%", inj.label()));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut tab = Table::new(
        format!("Fig 4: collective sensitivity at P={p} (2.5% net noise)"),
        &hdr,
    );

    for (name, sync) in ops {
        let base = mean_op_ns(p, sync, &NoiseInjection::none());
        let mut row = vec![name.to_string(), f(base / 1000.0)];
        for inj in &injections {
            let noisy = mean_op_ns(p, sync, inj);
            row.push(f((noisy - base) / base * 100.0));
        }
        tab.row(&row);
    }
    println!("{}", tab.render());
}

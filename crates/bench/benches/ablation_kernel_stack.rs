//! Ablation A7 — the full kernel-stack comparison.
//!
//! The paper's framing made concrete: what does a commodity kernel *stack*
//! cost versus a lightweight kernel, decomposed into its two mechanisms?
//!
//! * message notification: polling (LWK) vs interrupt + scheduler wakeup,
//! * background noise: none (LWK) vs the composite commodity-OS profile.
//!
//! Run on the POP-like workload, whose fine-grained allreduces expose both.

use ghost_bench::{prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, t, Table};
use ghost_engine::time::US;
use ghost_mpi::RecvMode;
use ghost_noise::composite::commodity_os;
use std::sync::Arc;

fn main() {
    prologue("ablation_kernel_stack");
    let p = if quick() { 64 } else { 512 };
    let w = ghost_bench::pop_workload();
    let lwk_noise = NoiseInjection::none();
    let commodity_noise =
        NoiseInjection::from_model(Arc::new(commodity_os()), "commodity-OS profile");
    let wakeup = 3 * US; // context switch + scheduling

    // The two noiseless configurations are answered from the campaign's
    // baseline cache — only the two recv modes and two noisy runs simulate.
    let configs: Vec<(&str, RecvMode, &NoiseInjection)> = vec![
        ("LWK (poll, noiseless)", RecvMode::Polling, &lwk_noise),
        ("LWK + commodity noise", RecvMode::Polling, &commodity_noise),
        (
            "interrupt wakeup, noiseless",
            RecvMode::Interrupt { wakeup },
            &lwk_noise,
        ),
        (
            "commodity stack (interrupt + noise)",
            RecvMode::Interrupt { wakeup },
            &commodity_noise,
        ),
    ];
    let mut campaign = Campaign::new();
    let wid = campaign.add_workload(&w);
    for (name, mode, inj) in &configs {
        let spec = ExperimentSpec {
            recv_mode: *mode,
            ..ExperimentSpec::flat(p, seed())
        };
        campaign.add_labeled(wid, spec, (*inj).clone(), *name);
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("kernel-stack sweep failed: {e}"));

    let mut tab = Table::new(
        format!("A7: kernel stack decomposition at P={p} (POP-like)"),
        &["configuration", "T_run", "slowdown vs LWK %"],
    );
    let baseline = run.results[0].run.makespan;
    for ((name, _, _), rec) in configs.iter().zip(&run.results) {
        let makespan = rec.run.makespan;
        tab.row(&[
            (*name).to_owned(),
            t(makespan),
            f((makespan as f64 - baseline as f64) / baseline as f64 * 100.0),
        ]);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
    println!(
        "note: both mechanisms matter, and they compound. A lightweight kernel buys\n\
         its application performance twice — by not stealing CPU and by letting the\n\
         application poll."
    );
}

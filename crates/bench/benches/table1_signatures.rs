//! Table 1 — injected noise signatures.
//!
//! The paper's signature table: for each injected configuration, the
//! nominal frequency, pulse duration, and net intensity, alongside the net
//! intensity *measured* by FWQ on a simulated node (verifying the injection
//! framework end to end).

use ghost_bench::{prologue, seed};
use ghost_core::campaign::run_indexed;
use ghost_core::report::{f, Table};
use ghost_engine::time::{format_time, MS};
use ghost_noise::ftq::fwq;
use ghost_noise::model::PhasePolicy;
use ghost_noise::signature::{canonical_set, CANONICAL_NET};
use ghost_noise::Signature;

fn main() {
    prologue("table1_signatures");
    let mut tab = Table::new(
        "Table 1: injected noise signatures (nominal vs FWQ-measured)",
        &[
            "signature",
            "freq (Hz)",
            "duration",
            "nominal net %",
            "measured net %",
            "hit samples %",
        ],
    );
    // One FWQ verification per signature, in parallel on the campaign
    // engine's indexed pool.
    let sigs: Vec<Signature> = [CANONICAL_NET, 0.10]
        .iter()
        .flat_map(|&net| canonical_set(net))
        .collect();
    let runs = run_indexed(
        sigs.len(),
        |i| format!("fwq {}", sigs[i].label()),
        |i| {
            let model = sigs[i].periodic_model(PhasePolicy::Random);
            Ok(fwq(&model, 0, seed(), MS, 10_000))
        },
    )
    .unwrap_or_else(|e| panic!("fwq sweep failed: {e}"));
    for (sig, run) in sigs.iter().zip(&runs) {
        tab.row(&[
            sig.label(),
            format!("{:.0}", sig.hz()),
            format_time(sig.duration()),
            f(sig.net_fraction() * 100.0),
            f(run.measured_noise_fraction() * 100.0),
            f(run.hit_fraction() * 100.0),
        ]);
    }
    println!("{}", tab.render());
}

//! Table 3 — replicated trials with confidence intervals.
//!
//! The headline comparisons with error bars: each (application, signature)
//! cell is re-run under independent seeds; the table reports mean ± 95% CI
//! of the slowdown, plus the min/max spread. Demonstrates that the
//! signature ordering is statistically unambiguous, not a lucky seed.

use ghost_apps::Workload;
use ghost_bench::{canonical_injections, prologue, quick, seed};
use ghost_core::experiment::ExperimentSpec;
use ghost_core::replicate::try_replicate;
use ghost_core::report::{f, Table};

fn main() {
    prologue("table3_replicates");
    let p = if quick() { 32 } else { 256 };
    let n = if quick() { 3 } else { 5 };
    let spec = ExperimentSpec::flat(p, seed());
    let sage = ghost_bench::sage_workload();
    let pop = ghost_bench::pop_workload();
    let apps: Vec<&dyn Workload> = vec![&sage, &pop];

    let mut tab = Table::new(
        format!("Table 3: slowdown distributions over {n} seeds at P={p} (2.5% net)"),
        &[
            "application",
            "signature",
            "mean slowdown %",
            "95% CI +/-",
            "min %",
            "max %",
            "mean amplification",
        ],
    );
    for w in apps {
        for inj in canonical_injections() {
            let r = try_replicate(&spec, w, &inj, n).expect("replication must succeed");
            tab.row(&[
                w.name(),
                inj.label().to_owned(),
                f(r.mean_slowdown_pct),
                f(r.ci95_half_width),
                f(r.min_slowdown_pct()),
                f(r.max_slowdown_pct()),
                f(r.mean_amplification()),
            ]);
        }
    }
    println!("{}", tab.render());
}

//! Criterion: engine primitives — event queue throughput, RNG streams.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ghost_engine::rng::{NodeStream, Xoshiro256};
use ghost_engine::{CalendarQueue, EventQueue};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                || {
                    let mut state = 0x1234u64;
                    let times: Vec<u64> = (0..n)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 33
                        })
                        .collect();
                    times
                },
                |times| {
                    let mut q = EventQueue::with_capacity(times.len());
                    for &t in &times {
                        q.push(t, t);
                    }
                    let mut acc = 0u64;
                    while let Some((t, _)) = q.pop() {
                        acc = acc.wrapping_add(t);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_calendar_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar_queue");
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                || {
                    let mut state = 0x1234u64;
                    let times: Vec<u64> = (0..n)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 33
                        })
                        .collect();
                    times
                },
                |times| {
                    let mut q = CalendarQueue::with_params(1 << 20, 1024);
                    for &t in &times {
                        q.push(t, t);
                    }
                    let mut acc = 0u64;
                    while let Some((t, _)) = q.pop() {
                        acc = acc.wrapping_add(t);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("xoshiro_1M_u64", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("node_stream_instantiation_10k", |b| {
        let s = NodeStream::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for node in 0..10_000 {
                acc = acc.wrapping_add(s.for_node(node, 1).next_u64());
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_calendar_queue, bench_rng);
criterion_main!(benches);

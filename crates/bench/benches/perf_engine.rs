//! Criterion: engine primitives — event queue throughput, RNG streams —
//! plus the `BENCH_engine.json` emitter: whole-machine event throughput
//! (events per wall-clock second) for the heap backend, the calendar
//! backend, and conservative-parallel execution, at 64, 1024, and 8192
//! ranks on the fig3-style 8-byte-allreduce workload. CI runs the emitter
//! and EXPERIMENTS.md records the measured curves.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_apps::Workload;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_engine::rng::{NodeStream, Xoshiro256};
use ghost_engine::{CalendarQueue, EventQueue};
use ghost_mpi::{EngineKind, Machine, Program};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                || {
                    let mut state = 0x1234u64;
                    let times: Vec<u64> = (0..n)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 33
                        })
                        .collect();
                    times
                },
                |times| {
                    let mut q = EventQueue::with_capacity(times.len());
                    for &t in &times {
                        q.push(t, t);
                    }
                    let mut acc = 0u64;
                    while let Some((t, _)) = q.pop() {
                        acc = acc.wrapping_add(t);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_calendar_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar_queue");
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                || {
                    let mut state = 0x1234u64;
                    let times: Vec<u64> = (0..n)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 33
                        })
                        .collect();
                    times
                },
                |times| {
                    let mut q = CalendarQueue::with_params(1 << 20, 1024);
                    for &t in &times {
                        q.push(t, t);
                    }
                    let mut acc = 0u64;
                    while let Some((t, _)) = q.pop() {
                        acc = acc.wrapping_add(t);
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("xoshiro_1M_u64", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("node_stream_instantiation_10k", |b| {
        let s = NodeStream::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for node in 0..10_000 {
                acc = acc.wrapping_add(s.for_node(node, 1).next_u64());
            }
            acc
        })
    });
    g.finish();
}

/// One timed run of the fig3-style allreduce workload: back-to-back small
/// allreduces dominated by event-queue traffic — the shape where queue
/// behavior, not compute modeling, sets the simulator's speed.
fn machine_events_per_sec(ranks: usize, engine: EngineKind, parallel: usize) -> (u64, u64) {
    let spec = ExperimentSpec::flat(ranks, 42);
    let w = BspSynthetic::new(4, 50_000).with_sync(SyncKind::Allreduce { bytes: 8 });
    let net = spec.build_network();
    let inj = NoiseInjection::none();
    let model = inj.build();
    let mut best: f64 = 0.0;
    let mut events = 0u64;
    // Best of 3: wall-clock medians are noisy at the 64-rank scale, and
    // throughput (not latency) is the quantity tracked.
    for _ in 0..3 {
        let programs: Vec<Box<dyn Program>> = w.programs(spec.nodes, spec.seed);
        let m = Machine::new(net.clone(), model.as_ref(), spec.seed)
            .with_engine(engine)
            .with_parallel(parallel);
        let t = Instant::now();
        let r = m.run(programs).expect("bench workload deadlocked");
        let eps = r.events as f64 / t.elapsed().as_secs_f64().max(1e-9);
        best = best.max(eps);
        events = r.events;
    }
    (events, best as u64)
}

/// Emit `BENCH_engine.json` at the workspace root: per-scale event
/// throughput for heap vs calendar vs conservative-parallel execution.
fn emit_bench_json(_c: &mut Criterion) {
    let mut rows = Vec::new();
    for ranks in [64usize, 1024, 8192] {
        let (events, heap_eps) = machine_events_per_sec(ranks, EngineKind::Heap, 1);
        let (_, calendar_eps) = machine_events_per_sec(ranks, EngineKind::Calendar, 1);
        let (_, parallel_eps) = machine_events_per_sec(ranks, EngineKind::Calendar, 2);
        rows.push(format!(
            "    {{\"ranks\": {ranks}, \"events\": {events}, \"heap_eps\": {heap_eps}, \
             \"calendar_eps\": {calendar_eps}, \"parallel2_eps\": {parallel_eps}}}"
        ));
        eprintln!(
            "engine bench: {ranks} ranks, {events} events — heap {heap_eps}/s, \
             calendar {calendar_eps}/s, parallel(2) {parallel_eps}/s"
        );
    }
    let json = format!(
        "{{\n  \"workload\": \"bsp 4x50us + allreduce 8B, mpp flat, noiseless\",\n  \
         \"scales\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_calendar_queue,
    bench_rng,
    emit_bench_json
);
criterion_main!(benches);

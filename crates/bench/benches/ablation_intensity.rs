//! Ablation A3 — intensity sweep at fixed 10 Hz.
//!
//! Scaling the net intensity at the most harmful frequency: slowdown is
//! strongly super-linear in intensity for a fine-grained application
//! (longer pulses at the same frequency), another way the "x% noise costs
//! x%" intuition fails.

use ghost_apps::bsp::BspSynthetic;
use ghost_bench::{prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};
use ghost_engine::time::US;
use ghost_noise::Signature;

fn main() {
    prologue("ablation_intensity");
    let p = if quick() { 64 } else { 512 };
    let spec = ExperimentSpec::flat(p, seed());
    let w = BspSynthetic::new(if quick() { 50 } else { 200 }, 500 * US);

    // Every intensity runs against the same machine: the campaign simulates
    // the noiseless baseline once and reuses it across the sweep.
    let sigs: Vec<Signature> = [0.005, 0.01, 0.025, 0.05, 0.10]
        .iter()
        .map(|&net| Signature::from_net(10.0, net))
        .collect();
    let mut campaign = Campaign::new();
    let wid = campaign.add_workload(&w);
    for &sig in &sigs {
        campaign.add(wid, spec, NoiseInjection::uncoordinated(sig));
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("intensity sweep failed: {e}"));

    let mut tab = Table::new(
        format!("A3: 10 Hz intensity sweep at P={p}, BSP g=500us"),
        &[
            "net intensity %",
            "pulse duration",
            "slowdown %",
            "amplification",
        ],
    );
    for (sig, rec) in sigs.iter().zip(&run.results) {
        tab.row(&[
            f(sig.net_fraction() * 100.0),
            ghost_engine::time::format_time(sig.duration()),
            f(rec.metrics.slowdown_pct()),
            f(rec.metrics.amplification()),
        ]);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

//! Figure 9 — pulse-duration sweep at fixed 2.5% net intensity.
//!
//! The cleanest statement of the paper's thesis: hold the stolen CPU share
//! constant and vary only the *shape*. As pulses lengthen (and rarify),
//! slowdown of a fine-grained application rises by orders of magnitude —
//! net noise percentage alone predicts nothing.

use ghost_apps::bsp::BspSynthetic;
use ghost_bench::{prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};
use ghost_engine::time::US;
use ghost_noise::signature::duration_sweep;

fn main() {
    prologue("fig9_duration_sweep");
    let p = if quick() { 64 } else { 1024 };
    let spec = ExperimentSpec::flat(p, seed());
    // A POP-granularity synthetic: 500 us compute + 8-byte allreduce.
    let w = BspSynthetic::new(if quick() { 100 } else { 400 }, 500 * US);

    // All pulse shapes share one machine: one baseline simulation serves
    // the whole sweep.
    let sigs = duration_sweep(0.025, 25 * US, 6400 * US);
    let mut campaign = Campaign::new();
    let wid = campaign.add_workload(&w);
    for &sig in &sigs {
        campaign.add(wid, spec, NoiseInjection::uncoordinated(sig));
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("duration sweep failed: {e}"));

    let mut tab = Table::new(
        format!("Fig 9: BSP (g=500us) slowdown vs pulse duration at fixed 2.5% net, P={p}"),
        &[
            "pulse duration",
            "frequency (Hz)",
            "slowdown %",
            "amplification",
            "model slowdown %",
        ],
    );
    for (sig, rec) in sigs.iter().zip(&run.results) {
        let model = ghost_core::analytic::expected_bsp_slowdown_pct(500 * US, *sig, p);
        tab.row(&[
            ghost_engine::time::format_time(sig.duration()),
            format!("{:.0}", sig.hz()),
            f(rec.metrics.slowdown_pct()),
            f(rec.metrics.amplification()),
            f(model),
        ]);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

//! Figure 6 — CTH-like slowdown vs node count (2.5% net noise).
//!
//! The intermediate case: visible amplification of the 10 Hz signature at
//! scale, while the fine-grained 1 kHz signature is still largely absorbed.

fn main() {
    ghost_bench::prologue("fig6_cth");
    let w = ghost_bench::cth_workload();
    ghost_bench::app_scaling_figure("Fig 6", "slowdown vs scale, 2.5% net noise", &w);
}

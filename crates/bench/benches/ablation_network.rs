//! Ablation A6 — does the interconnect change the noise story?
//!
//! POP-like slowdown under the harsh 2.5% signature on three networks:
//! an idealized free network, the Red-Storm-like MPP, and a slow commodity
//! cluster. Two observations, both network-robust:
//!
//! * the *absolute* noise-induced delay is nearly identical across a 100x
//!   span of network speed — the phenomenon is CPU-side (at P=512 the noisy
//!   runtime is ~1.5 s on every network);
//! * consequently the *relative* slowdown is largest on the fastest
//!   network (the baseline is smallest there): better interconnects make a
//!   machine more noise-sensitive in percentage terms, which is precisely
//!   why the noise problem surfaced on leadership-class machines first.

use ghost_bench::{prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::{ExperimentSpec, NetPreset};
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, t, Table};
use ghost_engine::time::US;
use ghost_noise::Signature;

fn main() {
    prologue("ablation_network");
    let p = if quick() { 64 } else { 512 };
    let w = ghost_bench::pop_workload();
    let inj = NoiseInjection::uncoordinated(Signature::new(10.0, 2500 * US));

    let nets = [
        ("ideal (free)", NetPreset::Ideal),
        ("MPP (Red-Storm-like)", NetPreset::Mpp),
        ("commodity (GigE-class)", NetPreset::Commodity),
    ];
    let mut campaign = Campaign::new();
    let wid = campaign.add_workload(&w);
    for (name, net) in nets {
        let spec = ExperimentSpec {
            net,
            ..ExperimentSpec::flat(p, seed())
        };
        campaign.add_labeled(wid, spec, inj.clone(), name);
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("network sweep failed: {e}"));

    let mut tab = Table::new(
        format!("A6: network sensitivity at P={p} (POP-like, 10Hz x 2.5ms)"),
        &[
            "network",
            "T_base",
            "T_noisy",
            "slowdown %",
            "amplification",
        ],
    );
    for ((name, _), rec) in nets.iter().zip(&run.results) {
        let m = &rec.metrics;
        tab.row(&[
            (*name).to_owned(),
            t(m.base),
            t(m.noisy),
            f(m.slowdown_pct()),
            f(m.amplification()),
        ]);
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

//! Figure 1 — the noise floor: lightweight kernel vs commodity OS.
//!
//! FTQ characterization of the two kernel archetypes the paper contrasts:
//! a Catamount-like lightweight kernel (no noise at all) and a commodity
//! general-purpose kernel (timer tick + scheduler + daemons). Prints the
//! per-quantum lost-work summary and the dominant spectral lines of the
//! commodity profile.

use ghost_bench::{prologue, seed};
use ghost_core::campaign::run_indexed;
use ghost_core::report::{f, Table};
use ghost_engine::time::MS;
use ghost_noise::composite::commodity_os;
use ghost_noise::ftq::ftq;
use ghost_noise::model::NoNoise;
use ghost_noise::spectrum::dominant_frequency;

fn main() {
    prologue("fig1_noise_floor");
    let quanta = 10_000; // 10 s at 1 ms quanta

    let mut tab = Table::new(
        "Fig 1: FTQ noise floor (1 ms quanta, 10 s)",
        &[
            "kernel",
            "net noise %",
            "mean lost/quantum (ns)",
            "p99 lost (ns)",
            "max lost (ns)",
            "dominant freq (Hz)",
        ],
    );

    // Both kernel profiles run in parallel on the campaign engine's
    // indexed pool: index 0 is the LWK, index 1 the commodity OS.
    let commodity = commodity_os();
    let kernels = [
        "lightweight (Catamount-like)",
        "commodity (tick+sched+daemons)",
    ];
    let runs = run_indexed(
        kernels.len(),
        |i| format!("ftq {}", kernels[i]),
        |i| {
            Ok(if i == 0 {
                ftq(&NoNoise, 0, seed(), MS, quanta)
            } else {
                ftq(&commodity, 0, seed(), MS, quanta)
            })
        },
    )
    .unwrap_or_else(|e| panic!("ftq runs failed: {e}"));

    for (i, (name, run)) in kernels.iter().zip(&runs).enumerate() {
        let lost = run.lost();
        let s = ghost_noise::stats::Summary::of_u64(&lost);
        let peak = if i == 0 {
            None
        } else {
            let series: Vec<f64> = lost.iter().map(|&x| x as f64).collect();
            dominant_frequency(&series, run.sample_rate_hz())
        };
        tab.row(&[
            (*name).into(),
            f(run.measured_noise_fraction() * 100.0),
            f(s.mean),
            f(s.p99),
            f(s.max),
            peak.map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    println!("{}", tab.render());
    println!(
        "note: the commodity profile steals only ~{:.1}% net, yet its rare multi-ms daemon\n\
         pulses are exactly the signature shown most harmful in Figs 5-9.",
        runs[1].measured_noise_fraction() * 100.0
    );
}

//! Ablation A4 — analytic max-of-P model vs simulation.
//!
//! Validates the closed-form model in `ghost_core::analytic` against the
//! simulator across granularities and scales for the 10 Hz signature.

use ghost_apps::bsp::BspSynthetic;
use ghost_bench::{prologue, quick, seed};
use ghost_core::analytic::expected_bsp_slowdown_pct;
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::injection::NoiseInjection;
use ghost_core::report::{f, Table};
use ghost_engine::time::{MS, US};
use ghost_noise::Signature;

fn main() {
    prologue("ablation_model_vs_sim");
    let sig = Signature::new(10.0, 2500 * US);
    let inj = NoiseInjection::uncoordinated(sig);
    // The run must span many noise periods or the estimate is dominated by
    // whether any pulse happened to land at all: size step counts so each
    // run covers >= ~20 pulse periods, within an event budget.
    let steps_for = |g: u64| -> usize {
        let span = if quick() { 2_000 * MS / 10 } else { 2_000 * MS };
        ((span / g.max(1)) as usize).clamp(200, 5_000)
    };
    let grains: &[u64] = &[100 * US, 500 * US, 2 * MS, 20 * MS];
    let scales: &[usize] = if quick() {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };

    // One workload per granularity; one campaign over the whole
    // granularity x scale grid.
    let workloads: Vec<BspSynthetic> = grains
        .iter()
        .map(|&g| BspSynthetic::new(steps_for(g), g))
        .collect();
    let mut campaign = Campaign::new();
    for w in &workloads {
        let wid = campaign.add_workload(w);
        for &p in scales {
            campaign.add(wid, ExperimentSpec::flat(p, seed()), inj.clone());
        }
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("model-vs-sim grid failed: {e}"));
    let rec = |gi: usize, si: usize| &run.results[gi * scales.len() + si];

    let mut tab = Table::new(
        "A4: analytic model vs simulation, 10Hz x 2.5ms (2.5% net)",
        &["granularity", "nodes", "sim slowdown %", "model slowdown %"],
    );
    for (gi, &g) in grains.iter().enumerate() {
        for (si, &p) in scales.iter().enumerate() {
            let model = expected_bsp_slowdown_pct(g, sig, p);
            tab.row(&[
                ghost_engine::time::format_time(g),
                p.to_string(),
                f(rec(gi, si).metrics.slowdown_pct()),
                f(model),
            ]);
        }
    }
    println!("{}", tab.render());
    println!("[ghostsim] {}", run.stats);
}

//! Criterion: noise model advance throughput (the simulator's hottest path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ghost_engine::rng::NodeStream;
use ghost_engine::time::{MS, US};
use ghost_noise::composite::commodity_os;
use ghost_noise::model::{NoiseModel, PhasePolicy};
use ghost_noise::stochastic::{DurationDist, PoissonNoise};
use ghost_noise::Signature;

const CALLS: usize = 100_000;

fn advance_loop(model: &dyn NoiseModel) -> u64 {
    let s = NodeStream::new(1);
    let mut n = model.instantiate(0, &s);
    let mut t = 0u64;
    for _ in 0..CALLS {
        t = n.advance(t, 100 * US);
    }
    t
}

fn bench_noise_advance(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise_advance");
    g.throughput(Throughput::Elements(CALLS as u64));
    let periodic = Signature::new(100.0, 250 * US).periodic_model(PhasePolicy::Random);
    g.bench_function("periodic_100k", |b| b.iter(|| advance_loop(&periodic)));
    let poisson = PoissonNoise::new(100.0, DurationDist::Exponential(250 * US));
    g.bench_function("poisson_100k", |b| b.iter(|| advance_loop(&poisson)));
    let composite = commodity_os();
    g.bench_function("commodity_composite_100k", |b| {
        b.iter(|| advance_loop(&composite))
    });
    g.finish();
}

fn bench_ftq(c: &mut Criterion) {
    let mut g = c.benchmark_group("microbenchmarks");
    let model = Signature::new(1000.0, 25 * US).periodic_model(PhasePolicy::Aligned);
    g.bench_function("ftq_10k_quanta", |b| {
        b.iter(|| ghost_noise::ftq::ftq(&model, 0, 1, MS, 10_000))
    });
    g.bench_function("fwq_10k_quanta", |b| {
        b.iter(|| ghost_noise::ftq::fwq(&model, 0, 1, MS, 10_000))
    });
    g.finish();
}

fn bench_spectrum(c: &mut Criterion) {
    let mut g = c.benchmark_group("spectrum");
    let series: Vec<f64> = (0..16_384)
        .map(|i| if i % 100 < 3 { 1.0 } else { 0.0 })
        .collect();
    g.bench_function("power_spectrum_16k", |b| {
        b.iter(|| ghost_noise::spectrum::power_spectrum(&series, 1000.0))
    });
    g.bench_function("welch_16k_seg512", |b| {
        b.iter(|| ghost_noise::spectrum::welch_spectrum(&series, 1000.0, 512))
    });
    g.bench_function("fundamental_16k", |b| {
        b.iter(|| ghost_noise::spectrum::fundamental_frequency(&series, 1000.0))
    });
    g.finish();
}

criterion_group!(benches, bench_noise_advance, bench_ftq, bench_spectrum);
criterion_main!(benches);

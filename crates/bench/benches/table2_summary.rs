//! Table 2 — the evaluation summary.
//!
//! For every application × canonical 2.5% signature at the largest default
//! scale: baseline time, noisy time, slowdown, amplification, and absorbed
//! noise — the numbers the paper's conclusions rest on.

use ghost_apps::Workload;
use ghost_bench::{canonical_injections, prologue, quick, seed};
use ghost_core::experiment::{compare, ExperimentSpec};
use ghost_core::report::{f, t, Table};

fn main() {
    prologue("table2_summary");
    let p = if quick() { 64 } else { 1024 };
    let spec = ExperimentSpec::flat(p, seed());
    let sage = ghost_bench::sage_workload();
    let cth = ghost_bench::cth_workload();
    let pop = ghost_bench::pop_workload();
    let apps: Vec<&dyn Workload> = vec![&sage, &cth, &pop];

    let mut tab = Table::new(
        format!("Table 2: summary at P={p}, 2.5% net injected noise"),
        &[
            "application",
            "signature",
            "T_base",
            "T_noisy",
            "slowdown %",
            "amplification",
            "absorbed %",
        ],
    );
    for w in apps {
        for inj in canonical_injections() {
            let m = compare(&spec, w, &inj);
            tab.row(&[
                w.name(),
                inj.label().to_owned(),
                t(m.base),
                t(m.noisy),
                f(m.slowdown_pct()),
                f(m.amplification()),
                f(m.absorbed_pct()),
            ]);
        }
    }
    println!("{}", tab.render());
    println!("{}", tab.to_csv());
}

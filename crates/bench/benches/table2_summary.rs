//! Table 2 — the evaluation summary.
//!
//! For every application × canonical 2.5% signature at the largest default
//! scale: baseline time, noisy time, slowdown, amplification, and absorbed
//! noise — the numbers the paper's conclusions rest on.

use ghost_apps::Workload;
use ghost_bench::{canonical_injections, prologue, quick, seed};
use ghost_core::campaign::Campaign;
use ghost_core::experiment::ExperimentSpec;
use ghost_core::report::{f, t, Table};

fn main() {
    prologue("table2_summary");
    let p = if quick() { 64 } else { 1024 };
    let spec = ExperimentSpec::flat(p, seed());
    let sage = ghost_bench::sage_workload();
    let cth = ghost_bench::cth_workload();
    let pop = ghost_bench::pop_workload();
    let apps: Vec<&dyn Workload> = vec![&sage, &cth, &pop];

    // The full application x signature grid as one campaign: each
    // application's baseline is simulated once, not once per signature.
    let mut campaign = Campaign::new();
    for w in apps {
        let wid = campaign.add_workload(w);
        for inj in canonical_injections() {
            campaign.add(wid, spec, inj);
        }
    }
    let run = campaign
        .run()
        .unwrap_or_else(|e| panic!("summary grid failed: {e}"));

    let mut tab = Table::new(
        format!("Table 2: summary at P={p}, 2.5% net injected noise"),
        &[
            "application",
            "signature",
            "T_base",
            "T_noisy",
            "slowdown %",
            "amplification",
            "absorbed %",
        ],
    );
    for rec in &run.results {
        let m = &rec.metrics;
        tab.row(&[
            rec.workload.clone(),
            rec.injection.clone(),
            t(m.base),
            t(m.noisy),
            f(m.slowdown_pct()),
            f(m.amplification()),
            f(m.absorbed_pct()),
        ]);
    }
    println!("{}", tab.render());
    println!("{}", tab.to_csv());
    println!("[ghostsim] {}", run.stats);
}

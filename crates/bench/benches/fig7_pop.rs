//! Figure 7 — POP-like slowdown vs node count (2.5% net noise).
//!
//! The paper's headline: POP's barotropic conjugate-gradient solver
//! synchronizes every few hundred microseconds, so 2.5% of noise delivered
//! as 2500 us pulses produces slowdowns of hundreds to thousands of percent
//! at scale — orders of magnitude beyond the injected intensity.

fn main() {
    ghost_bench::prologue("fig7_pop");
    let w = ghost_bench::pop_workload();
    ghost_bench::app_scaling_figure("Fig 7", "slowdown vs scale, 2.5% net noise", &w);
}

//! Criterion: full-machine simulation throughput for collectives and POP.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ghost_apps::bsp::{BspSynthetic, SyncKind};
use ghost_apps::{PopLike, Workload};
use ghost_core::experiment::{run_workload, ExperimentSpec};
use ghost_core::injection::NoiseInjection;
use ghost_engine::time::US;
use ghost_noise::Signature;

fn bench_allreduce_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_allreduce");
    g.sample_size(10);
    for p in [64usize, 512] {
        let w = BspSynthetic::new(50, 0).with_sync(SyncKind::Allreduce { bytes: 8 });
        let spec = ExperimentSpec::flat(p, 1);
        g.throughput(Throughput::Elements(50));
        g.bench_function(format!("p{p}_50ops_noiseless"), |b| {
            b.iter(|| run_workload(&spec, &w, &NoiseInjection::none()).makespan)
        });
        let inj = NoiseInjection::uncoordinated(Signature::new(10.0, 2500 * US));
        g.bench_function(format!("p{p}_50ops_noisy"), |b| {
            b.iter(|| run_workload(&spec, &w, &inj).makespan)
        });
    }
    g.finish();
}

fn bench_pop_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_pop");
    g.sample_size(10);
    let w = PopLike {
        steps: 1,
        ..Default::default()
    };
    for p in [64usize, 256] {
        let spec = ExperimentSpec::flat(p, 1);
        g.throughput(Throughput::Elements(w.collectives_per_rank()));
        g.bench_function(format!("p{p}_1step"), |b| {
            b.iter(|| run_workload(&spec, &w, &NoiseInjection::none()).events)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allreduce_sim, bench_pop_sim);
criterion_main!(benches);

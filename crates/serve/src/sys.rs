//! Thin syscall shims for the event loop — readiness polling and the
//! process fd limit.
//!
//! Std deliberately exposes no readiness API, and the workspace takes no
//! external crates (the vendored proptest/criterion precedent), so this
//! module carries the few `extern "C"` declarations the event loop needs:
//! `epoll` on Linux (O(ready) wakeups — with 10k registered connections a
//! `poll(2)` scan would cost O(n) kernel work per wakeup, exactly the
//! kernel-interference effect the source paper measures), a portable
//! `poll(2)` backend everywhere else on Unix, and `getrlimit(RLIMIT_NOFILE)`
//! so `--stats` can report how close the daemon is to fd exhaustion.
//!
//! Everything here is level-triggered: the loop re-arms nothing and simply
//! keeps getting woken while an fd stays ready.

#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer-closed / errored — a read will tell).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Interest set for one registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when readable.
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

/// A level-triggered readiness poller: `epoll` on Linux, `poll(2)` on
/// other Unix. The backend can be forced to `poll(2)` with
/// `GHOST_SERVE_POLL_BACKEND=poll` (useful for comparing the O(n)-scan
/// cost against epoll on the same machine).
pub(crate) enum Poller {
    #[cfg(target_os = "linux")]
    /// Linux epoll backend.
    Epoll(EpollPoller),
    /// Portable poll(2) backend.
    Poll(PollPoller),
}

impl Poller {
    /// Create the platform-preferred poller.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            let force_poll = std::env::var("GHOST_SERVE_POLL_BACKEND")
                .map(|v| v == "poll")
                .unwrap_or(false);
            if !force_poll {
                return Ok(Poller::Epoll(EpollPoller::new()?));
            }
        }
        Ok(Poller::Poll(PollPoller::new()))
    }

    /// Human-readable backend name (surfaced as the
    /// `ghost_serve_poll_backend_info` metric label).
    pub fn backend_name(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Start watching `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.modify(fd, token, interest),
            Poller::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Stop watching `fd`. Must be called *before* the fd is closed.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Block up to `timeout_ms` for readiness; returns the ready set
    /// (possibly empty on timeout). `EINTR` reads as an empty set.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<&[PollEvent]> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(timeout_ms),
            Poller::Poll(p) => p.wait(timeout_ms),
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux)

#[cfg(target_os = "linux")]
mod epoll_ffi {
    use std::os::raw::c_int;

    // glibc packs epoll_event on x86-64 only (__EPOLL_PACKED); mirroring
    // that exactly is what makes calling the libc wrappers safe.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// The Linux epoll backend: O(ready) wakeups regardless of how many fds
/// are registered.
#[cfg(target_os = "linux")]
pub(crate) struct EpollPoller {
    epfd: RawFd,
    raw: Vec<epoll_ffi::EpollEvent>,
    out: Vec<PollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<Self> {
        // Safety: plain syscall wrapper, no pointers involved.
        let epfd = unsafe { epoll_ffi::epoll_create1(epoll_ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            epfd,
            raw: vec![epoll_ffi::EpollEvent { events: 0, data: 0 }; 1024],
            out: Vec::with_capacity(1024),
        })
    }

    fn ctl(
        &mut self,
        op: std::os::raw::c_int,
        fd: RawFd,
        token: u64,
        i: Interest,
    ) -> io::Result<()> {
        let mut ev = epoll_ffi::EpollEvent {
            events: interest_bits(i),
            data: token,
        };
        // Safety: `ev` outlives the call; DEL ignores the event pointer.
        let rc = unsafe { epoll_ffi::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(
            epoll_ffi::EPOLL_CTL_DEL,
            fd,
            0,
            Interest {
                read: false,
                write: false,
            },
        )
    }

    fn wait(&mut self, timeout_ms: i32) -> io::Result<&[PollEvent]> {
        // Safety: the buffer pointer/length pair describes `self.raw`.
        let n = unsafe {
            epoll_ffi::epoll_wait(
                self.epfd,
                self.raw.as_mut_ptr(),
                self.raw.len() as std::os::raw::c_int,
                timeout_ms,
            )
        };
        self.out.clear();
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(&self.out);
            }
            return Err(e);
        }
        for ev in &self.raw[..n as usize] {
            // Copy out of the (possibly packed) struct before field use.
            let bits = ev.events;
            let token = ev.data;
            self.out.push(PollEvent {
                token,
                // ERR/HUP surface as readable: the next read reports why.
                readable: bits
                    & (epoll_ffi::EPOLLIN
                        | epoll_ffi::EPOLLERR
                        | epoll_ffi::EPOLLHUP
                        | epoll_ffi::EPOLLRDHUP)
                    != 0,
                writable: bits & epoll_ffi::EPOLLOUT != 0,
            });
        }
        Ok(&self.out)
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // Safety: closing an fd we own.
        unsafe { epoll_ffi::close(self.epfd) };
    }
}

#[cfg(target_os = "linux")]
fn interest_bits(i: Interest) -> u32 {
    let mut bits = epoll_ffi::EPOLLRDHUP;
    if i.read {
        bits |= epoll_ffi::EPOLLIN;
    }
    if i.write {
        bits |= epoll_ffi::EPOLLOUT;
    }
    bits
}

// ---------------------------------------------------------------------------
// poll(2) backend (portable Unix)

mod poll_ffi {
    use std::os::raw::{c_int, c_short};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    // nfds_t is unsigned long on every Unix libc this repo targets.
    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: c_int) -> c_int;
    }
}

/// The portable backend: registrations live in a map and every `wait`
/// rebuilds and scans the full pollfd array — O(n) per call, which is the
/// cost profile the epoll backend exists to avoid.
pub(crate) struct PollPoller {
    registered: HashMap<RawFd, (u64, Interest)>,
    fds: Vec<poll_ffi::PollFd>,
    tokens: Vec<u64>,
    out: Vec<PollEvent>,
}

impl PollPoller {
    fn new() -> Self {
        Self {
            registered: HashMap::new(),
            fds: Vec::new(),
            tokens: Vec::new(),
            out: Vec::new(),
        }
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.registered.insert(fd, (token, interest)).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.registered.get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.registered.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&mut self, timeout_ms: i32) -> io::Result<&[PollEvent]> {
        self.fds.clear();
        self.tokens.clear();
        for (&fd, &(token, interest)) in &self.registered {
            let mut events = 0;
            if interest.read {
                events |= poll_ffi::POLLIN;
            }
            if interest.write {
                events |= poll_ffi::POLLOUT;
            }
            self.fds.push(poll_ffi::PollFd {
                fd,
                events,
                revents: 0,
            });
            self.tokens.push(token);
        }
        // Safety: pointer/length describe `self.fds`.
        let n = unsafe {
            poll_ffi::poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        self.out.clear();
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(&self.out);
            }
            return Err(e);
        }
        for (pfd, &token) in self.fds.iter().zip(&self.tokens) {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            self.out.push(PollEvent {
                token,
                readable: r & (poll_ffi::POLLIN | poll_ffi::POLLERR | poll_ffi::POLLHUP) != 0,
                writable: r & poll_ffi::POLLOUT != 0,
            });
        }
        Ok(&self.out)
    }
}

// ---------------------------------------------------------------------------
// Process fd limit

mod rlimit_ffi {
    use std::os::raw::c_int;

    #[repr(C)]
    pub struct RLimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    #[cfg(target_os = "linux")]
    pub const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    pub const RLIMIT_NOFILE: c_int = 8; // BSD/macOS value

    extern "C" {
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    }
}

/// The soft `RLIMIT_NOFILE` — the hard ceiling on concurrent connections
/// this process can hold. 0 means the limit could not be read.
pub fn fd_limit() -> u64 {
    let mut rl = rlimit_ffi::RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // Safety: `rl` is a valid out-pointer for the duration of the call.
    let rc = unsafe { rlimit_ffi::getrlimit(rlimit_ffi::RLIMIT_NOFILE, &mut rl) };
    if rc != 0 {
        return 0;
    }
    rl.rlim_cur
}

/// Whether an accept error means the process (or system) ran out of file
/// descriptors — `EMFILE` / `ENFILE`, the only accept failures worth a
/// backoff rather than a retry or a teardown.
pub fn is_fd_exhaustion(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24)) // ENFILE | EMFILE
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn fd_limit_is_nonzero() {
        assert!(fd_limit() > 0, "getrlimit must report a real limit");
    }

    fn exercise(mut poller: Poller) {
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let fd = b.as_raw_fd();
        poller
            .register(
                fd,
                7,
                Interest {
                    read: true,
                    write: false,
                },
            )
            .unwrap();
        // Nothing readable yet: a zero-timeout wait reports nothing.
        assert!(poller.wait(0).unwrap().is_empty());
        a.write_all(b"x").unwrap();
        let evs = poller.wait(1000).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, 7);
        assert!(evs[0].readable);
        // Write interest on an empty socket buffer fires immediately.
        poller
            .modify(
                fd,
                7,
                Interest {
                    read: false,
                    write: true,
                },
            )
            .unwrap();
        let evs = poller.wait(1000).unwrap();
        assert!(evs.iter().any(|e| e.token == 7 && e.writable));
        poller.deregister(fd).unwrap();
        assert!(poller.wait(0).unwrap().is_empty());
    }

    #[test]
    fn platform_backend_reports_readiness() {
        exercise(Poller::new().unwrap());
    }

    #[test]
    fn poll_backend_reports_readiness() {
        exercise(Poller::Poll(PollPoller::new()));
    }
}

//! Wire layer: versioned length-prefixed frames and a strict binary codec
//! for requests, responses, and scenario specs.
//!
//! Every frame is `magic(u32) | version(u16) | len(u32) | payload`, all
//! little-endian, with `len` capped at [`MAX_PAYLOAD`]. The payload codec
//! is hand-rolled (std-only), fixed-width, and *canonical*: one spec has
//! exactly one encoding, which is what lets
//! [`scenario_key_bytes`] double as the content address of the persistent
//! result store.
//!
//! Decoding is total: any byte sequence produces either a value or a typed
//! [`WireError`] — never a panic and never an allocation proportional to a
//! length field that the buffer cannot back. A malformed *payload* leaves
//! the frame stream synchronized, so a server can answer
//! `Response::Error` and keep the connection; a malformed *header* is
//! unrecoverable and the connection must be dropped.

use std::io::{Read, Write};

use ghost_core::experiment::{ExperimentSpec, NetPreset, TopoPreset};
use ghost_core::metrics::Metrics;
use ghost_core::scenario::{InjectionSpec, PhaseSpec, ScenarioOutcome, ScenarioSpec, WorkloadSpec};
use ghost_mpi::{AllgatherAlgo, AllreduceAlgo, BcastAlgo, CollectiveConfig, RecvMode, RunResult};
use ghost_net::{ContendCfg, RetryModel, Routing};
use ghost_noise::fault::{FaultKind, FaultPlan};

/// Frame magic: `"GSRV"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"GSRV");
/// Baseline protocol version: the original client-facing request set.
pub const VERSION: u16 = 1;
/// Fleet protocol version: adds the peer-to-peer request set
/// (`Forward`/`Gossip`/`SyncDigest`/`SyncList`/`Fetch`). Version-gated so a
/// v1 client never sees a frame it cannot parse: servers answer in the
/// version the request arrived with, and fleet tags inside a v1 frame are
/// rejected with a typed error instead of being acted on.
pub const FLEET_VERSION: u16 = 2;
/// Highest frame version this build understands.
pub const MAX_VERSION: u16 = FLEET_VERSION;
/// Upper bound on a frame payload (16 MiB) — a corrupt length field must
/// not become an allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// An I/O error while reading or writing (rendered as text).
    Io(String),
    /// Header magic was not `GSRV` — the stream is desynchronized.
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u16),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The payload ended before the value it claimed to hold.
    Truncated,
    /// An enum discriminant no decoder recognizes.
    UnknownTag(u8),
    /// Payload bytes remained after the value was fully decoded.
    TrailingBytes(usize),
    /// A decoded length/count field fails a sanity bound.
    BadLength(u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A socket read or write timed out (the peer stalled mid-frame).
    TimedOut,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds cap"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::BadLength(n) => write!(f, "implausible length field {n}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::TimedOut => write!(f, "socket timed out mid-frame"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Whether the frame stream is still synchronized after this error
    /// (payload-level problem) or must be torn down (header-level).
    pub fn recoverable(&self) -> bool {
        matches!(
            self,
            WireError::Truncated
                | WireError::UnknownTag(_)
                | WireError::TrailingBytes(_)
                | WireError::BadLength(_)
                | WireError::BadUtf8
        )
    }
}

// ---------------------------------------------------------------------------
// Frames

/// Map an I/O error onto the wire taxonomy: socket timeouts (surfaced as
/// `WouldBlock` on Unix, `TimedOut` on Windows) become [`WireError::TimedOut`]
/// so callers can distinguish a stalled peer from a torn connection.
fn io_err(e: &std::io::Error) -> WireError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::TimedOut,
        _ => WireError::Io(e.to_string()),
    }
}

/// Write one frame (header + payload) to `w` at the baseline [`VERSION`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    write_frame_v(w, VERSION, payload)
}

/// Write one frame at an explicit protocol `version`. Fleet requests must
/// travel in [`FLEET_VERSION`] frames; everything else stays at
/// [`VERSION`] so pre-fleet servers keep answering.
pub fn write_frame_v(w: &mut impl Write, version: u16, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversize(u32::MAX))?;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    // One buffer, one write: a header-then-payload pair of small writes
    // would interact badly with Nagle + delayed ACK on real sockets.
    let mut frame = Vec::with_capacity(10 + payload.len());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    frame.extend_from_slice(&version.to_le_bytes());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| io_err(&e))
}

/// Read one frame payload from `r`, accepting any supported version.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    read_frame_versioned(r).map(|(_, payload)| payload)
}

/// Read one frame from `r`, returning the header version alongside the
/// payload so the server can version-gate the fleet request set. EOF
/// *before the first header byte* is a clean [`WireError::Closed`]; EOF
/// mid-frame is an I/O error.
pub fn read_frame_versioned(r: &mut impl Read) -> Result<(u16, Vec<u8>), WireError> {
    let mut header = [0u8; 10];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => return Err(WireError::Io("eof mid-header".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(&e)),
        }
    }
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if !(VERSION..=MAX_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| io_err(&e))?;
    Ok((version, payload))
}

// ---------------------------------------------------------------------------
// Primitive codec

/// Byte-buffer writer for the canonical encoding.
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    #[cfg(test)]
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len().min(u32::MAX as usize) as u32);
        self.0.extend_from_slice(&s.as_bytes()[..s.len()]);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len().min(u32::MAX as usize) as u32);
        self.0
            .extend_from_slice(&b[..b.len().min(u32::MAX as usize)]);
    }
}

/// Strict reader over a payload slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadLength(v))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A count field that will drive a loop or allocation: bounded by the
    /// bytes actually remaining (each element costs >= 1 byte), so corrupt
    /// lengths fail fast instead of allocating.
    fn count(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| WireError::BadLength(v))?;
        if n > self.buf.len() - self.pos {
            return Err(WireError::BadLength(v));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    /// Require the buffer to be fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Scenario spec (the canonical cache-key encoding)

fn enc_workload(e: &mut Enc, w: &WorkloadSpec) {
    match *w {
        WorkloadSpec::Sage { steps } => {
            e.u8(0);
            e.u32(steps);
        }
        WorkloadSpec::Cth { steps } => {
            e.u8(1);
            e.u32(steps);
        }
        WorkloadSpec::Pop { steps } => {
            e.u8(2);
            e.u32(steps);
        }
        WorkloadSpec::Spectral { steps } => {
            e.u8(3);
            e.u32(steps);
        }
        WorkloadSpec::Bsp { steps, compute } => {
            e.u8(4);
            e.u32(steps);
            e.u64(compute);
        }
    }
}

fn dec_workload(d: &mut Dec) -> Result<WorkloadSpec, WireError> {
    Ok(match d.u8()? {
        0 => WorkloadSpec::Sage { steps: d.u32()? },
        1 => WorkloadSpec::Cth { steps: d.u32()? },
        2 => WorkloadSpec::Pop { steps: d.u32()? },
        3 => WorkloadSpec::Spectral { steps: d.u32()? },
        4 => WorkloadSpec::Bsp {
            steps: d.u32()?,
            compute: d.u64()?,
        },
        t => return Err(WireError::UnknownTag(t)),
    })
}

fn enc_machine(e: &mut Enc, m: &ExperimentSpec) {
    e.usize(m.nodes);
    e.u8(match m.net {
        NetPreset::Mpp => 0,
        NetPreset::Commodity => 1,
        NetPreset::Ideal => 2,
    });
    match m.topo {
        TopoPreset::Flat => e.u8(0),
        TopoPreset::Torus3D => e.u8(1),
        TopoPreset::FatTree { arity } => {
            e.u8(2);
            e.usize(arity);
        }
        TopoPreset::Dragonfly {
            groups,
            routers,
            hosts,
        } => {
            e.u8(3);
            e.usize(groups);
            e.usize(routers);
            e.usize(hosts);
        }
    }
    e.u64(m.seed);
    match m.coll.allreduce {
        AllreduceAlgo::RecursiveDoubling => e.u8(0),
        AllreduceAlgo::Rabenseifner => e.u8(1),
        AllreduceAlgo::Auto { threshold } => {
            e.u8(2);
            e.u64(threshold);
        }
    }
    match m.coll.bcast {
        BcastAlgo::Binomial => e.u8(0),
        BcastAlgo::ScatterAllgather => e.u8(1),
        BcastAlgo::Auto { threshold } => {
            e.u8(2);
            e.u64(threshold);
        }
    }
    e.u8(match m.coll.allgather {
        AllgatherAlgo::Ring => 0,
        AllgatherAlgo::RecursiveDoubling => 1,
    });
    e.u64(m.coll.reduce_cost_ps_per_byte);
    match m.recv_mode {
        RecvMode::Polling => e.u8(0),
        RecvMode::Interrupt { wakeup } => {
            e.u8(1);
            e.u64(wakeup);
        }
    }
    e.u32(m.contend.link_mbps);
    e.u8(match m.contend.routing {
        Routing::Minimal => 0,
        Routing::Ugal => 1,
    });
}

fn dec_machine(d: &mut Dec) -> Result<ExperimentSpec, WireError> {
    let nodes = d.usize()?;
    let net = match d.u8()? {
        0 => NetPreset::Mpp,
        1 => NetPreset::Commodity,
        2 => NetPreset::Ideal,
        t => return Err(WireError::UnknownTag(t)),
    };
    let topo = match d.u8()? {
        0 => TopoPreset::Flat,
        1 => TopoPreset::Torus3D,
        2 => TopoPreset::FatTree { arity: d.usize()? },
        3 => TopoPreset::Dragonfly {
            groups: d.usize()?,
            routers: d.usize()?,
            hosts: d.usize()?,
        },
        t => return Err(WireError::UnknownTag(t)),
    };
    let seed = d.u64()?;
    let allreduce = match d.u8()? {
        0 => AllreduceAlgo::RecursiveDoubling,
        1 => AllreduceAlgo::Rabenseifner,
        2 => AllreduceAlgo::Auto {
            threshold: d.u64()?,
        },
        t => return Err(WireError::UnknownTag(t)),
    };
    let bcast = match d.u8()? {
        0 => BcastAlgo::Binomial,
        1 => BcastAlgo::ScatterAllgather,
        2 => BcastAlgo::Auto {
            threshold: d.u64()?,
        },
        t => return Err(WireError::UnknownTag(t)),
    };
    let allgather = match d.u8()? {
        0 => AllgatherAlgo::Ring,
        1 => AllgatherAlgo::RecursiveDoubling,
        t => return Err(WireError::UnknownTag(t)),
    };
    let reduce_cost_ps_per_byte = d.u64()?;
    let recv_mode = match d.u8()? {
        0 => RecvMode::Polling,
        1 => RecvMode::Interrupt { wakeup: d.u64()? },
        t => return Err(WireError::UnknownTag(t)),
    };
    let link_mbps = d.u32()?;
    let routing = match d.u8()? {
        0 => Routing::Minimal,
        1 => Routing::Ugal,
        t => return Err(WireError::UnknownTag(t)),
    };
    Ok(ExperimentSpec {
        nodes,
        net,
        topo,
        seed,
        coll: CollectiveConfig {
            allreduce,
            bcast,
            allgather,
            reduce_cost_ps_per_byte,
        },
        recv_mode,
        contend: ContendCfg { link_mbps, routing },
    })
}

fn enc_faults(e: &mut Enc, plan: &FaultPlan) {
    e.usize(plan.len());
    for ev in plan.events() {
        e.usize(ev.rank);
        match ev.kind {
            FaultKind::Delay { at, duration } => {
                e.u8(0);
                e.u64(at);
                e.u64(duration);
            }
            FaultKind::Straggler { factor_x1000 } => {
                e.u8(1);
                e.u32(factor_x1000);
            }
            FaultKind::Crash { at } => {
                e.u8(2);
                e.u64(at);
            }
            FaultKind::Drop {
                from,
                until,
                prob_ppm,
            } => {
                e.u8(3);
                e.u64(from);
                e.u64(until);
                e.u32(prob_ppm);
            }
            FaultKind::Duplicate {
                from,
                until,
                prob_ppm,
            } => {
                e.u8(4);
                e.u64(from);
                e.u64(until);
                e.u32(prob_ppm);
            }
        }
    }
}

fn dec_faults(d: &mut Dec) -> Result<FaultPlan, WireError> {
    let n = d.count()?;
    let mut plan = FaultPlan::new();
    for _ in 0..n {
        let rank = d.usize()?;
        let kind = match d.u8()? {
            0 => FaultKind::Delay {
                at: d.u64()?,
                duration: d.u64()?,
            },
            1 => FaultKind::Straggler {
                factor_x1000: d.u32()?,
            },
            2 => FaultKind::Crash { at: d.u64()? },
            3 => FaultKind::Drop {
                from: d.u64()?,
                until: d.u64()?,
                prob_ppm: d.u32()?,
            },
            4 => FaultKind::Duplicate {
                from: d.u64()?,
                until: d.u64()?,
                prob_ppm: d.u32()?,
            },
            t => return Err(WireError::UnknownTag(t)),
        };
        plan = plan.with(rank, kind);
    }
    Ok(plan)
}

fn enc_injection(e: &mut Enc, i: &InjectionSpec) {
    e.u64(i.hz_mhz);
    e.u32(i.net_ppm);
    match i.phase {
        PhaseSpec::Aligned => e.u8(0),
        PhaseSpec::Random => e.u8(1),
        PhaseSpec::Staggered => e.u8(2),
        PhaseSpec::Fixed(t) => {
            e.u8(3);
            e.u64(t);
        }
    }
    enc_faults(e, &i.faults);
    e.u32(i.drop_ppm);
    e.u32(i.dup_ppm);
    e.u64(i.retry.rto);
    e.u32(i.retry.backoff_x1000);
    e.u64(i.retry.max_rto);
    e.u32(i.retry.max_retries);
}

fn dec_injection(d: &mut Dec) -> Result<InjectionSpec, WireError> {
    let hz_mhz = d.u64()?;
    let net_ppm = d.u32()?;
    let phase = match d.u8()? {
        0 => PhaseSpec::Aligned,
        1 => PhaseSpec::Random,
        2 => PhaseSpec::Staggered,
        3 => PhaseSpec::Fixed(d.u64()?),
        t => return Err(WireError::UnknownTag(t)),
    };
    let faults = dec_faults(d)?;
    let drop_ppm = d.u32()?;
    let dup_ppm = d.u32()?;
    let retry = RetryModel {
        rto: d.u64()?,
        backoff_x1000: d.u32()?,
        max_rto: d.u64()?,
        max_retries: d.u32()?,
    };
    Ok(InjectionSpec {
        hz_mhz,
        net_ppm,
        phase,
        faults,
        drop_ppm,
        dup_ppm,
        retry,
    })
}

/// Encode a scenario spec into `e` (canonical form).
pub fn enc_scenario(e: &mut Enc, s: &ScenarioSpec) {
    enc_workload(e, &s.workload);
    enc_machine(e, &s.machine);
    enc_injection(e, &s.injection);
}

/// Decode a scenario spec from `d`.
pub fn dec_scenario(d: &mut Dec) -> Result<ScenarioSpec, WireError> {
    Ok(ScenarioSpec {
        workload: dec_workload(d)?,
        machine: dec_machine(d)?,
        injection: dec_injection(d)?,
    })
}

/// The canonical byte encoding of a spec — the content address of the
/// persistent result store. Equal specs produce equal bytes and (by
/// construction of the codec) vice versa.
pub fn scenario_key_bytes(s: &ScenarioSpec) -> Vec<u8> {
    let mut e = Enc::default();
    enc_scenario(&mut e, s);
    e.0
}

/// 64-bit FNV-1a of `bytes` — names the store file for a key. Collisions
/// are harmless: the store verifies the full key before serving.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Run results and replies

fn enc_run(e: &mut Enc, r: &RunResult) {
    e.u64(r.makespan);
    e.usize(r.finish_times.len());
    for &t in &r.finish_times {
        e.u64(t);
    }
    e.usize(r.final_values.len());
    for v in &r.final_values {
        match v {
            None => e.u8(0),
            Some(x) => {
                e.u8(1);
                e.f64(*x);
            }
        }
    }
    e.usize(r.compute_work.len());
    for &w in &r.compute_work {
        e.u64(w);
    }
    e.usize(r.blocked_time.len());
    for &t in &r.blocked_time {
        e.u64(t);
    }
    e.u64(r.messages);
    e.u64(r.events);
    e.u64(r.retransmits);
    e.usize(r.failed_ranks.len());
    for &rk in &r.failed_ranks {
        e.usize(rk);
    }
}

fn dec_run(d: &mut Dec) -> Result<RunResult, WireError> {
    let makespan = d.u64()?;
    let n = d.count()?;
    let finish_times = (0..n).map(|_| d.u64()).collect::<Result<Vec<_>, _>>()?;
    let n = d.count()?;
    let final_values = (0..n)
        .map(|_| {
            Ok(match d.u8()? {
                0 => None,
                1 => Some(d.f64()?),
                t => return Err(WireError::UnknownTag(t)),
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let n = d.count()?;
    let compute_work = (0..n).map(|_| d.u64()).collect::<Result<Vec<_>, _>>()?;
    let n = d.count()?;
    let blocked_time = (0..n).map(|_| d.u64()).collect::<Result<Vec<_>, _>>()?;
    let messages = d.u64()?;
    let events = d.u64()?;
    let retransmits = d.u64()?;
    let n = d.count()?;
    let failed_ranks = (0..n).map(|_| d.usize()).collect::<Result<Vec<_>, _>>()?;
    Ok(RunResult {
        makespan,
        finish_times,
        final_values,
        compute_work,
        blocked_time,
        messages,
        events,
        retransmits,
        failed_ranks,
    })
}

/// A served scenario result: the baseline/injected run pair.
///
/// Deliberately carries *no provenance* (cache hit vs. fresh simulation):
/// a warm-served reply must be byte-identical to a cold one. Provenance
/// lives in [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReply {
    /// The scenario's label.
    pub label: String,
    /// Net injected intensity in ppm (echoed so the client can derive
    /// [`Metrics`] without re-parsing the spec).
    pub injected_ppm: u32,
    /// Noiseless baseline run.
    pub baseline: RunResult,
    /// The injected run.
    pub run: RunResult,
}

impl ScenarioReply {
    /// Build the canonical reply for `spec` from a completed outcome.
    pub fn from_outcome(spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> Self {
        Self {
            label: outcome.label.clone(),
            injected_ppm: spec.injection.net_ppm,
            baseline: (*outcome.baseline).clone(),
            run: (*outcome.run).clone(),
        }
    }

    /// The figures of merit for this pair.
    pub fn metrics(&self) -> Metrics {
        Metrics::new(
            self.baseline.makespan,
            self.run.makespan,
            self.injected_ppm as f64 / 1e6,
        )
    }

    /// Canonical byte encoding (what the store persists).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::default();
        enc_reply(&mut e, self);
        e.0
    }

    /// Decode from the canonical byte encoding, requiring full consumption.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(bytes);
        let r = dec_reply(&mut d)?;
        d.finish()?;
        Ok(r)
    }
}

fn enc_reply(e: &mut Enc, r: &ScenarioReply) {
    e.str(&r.label);
    e.u32(r.injected_ppm);
    enc_run(e, &r.baseline);
    enc_run(e, &r.run);
}

fn dec_reply(d: &mut Dec) -> Result<ScenarioReply, WireError> {
    Ok(ScenarioReply {
        label: d.str()?,
        injected_ppm: d.u32()?,
        baseline: dec_run(d)?,
        run: dec_run(d)?,
    })
}

// ---------------------------------------------------------------------------
// Server statistics

/// One log2 latency bucket: `[lo, hi)` bounds and its sample count.
pub type HistBucket = (u64, u64, u64);

/// Observability snapshot answered by a `Stats` request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Total requests decoded (any kind).
    pub requests: u64,
    /// Scenario submissions answered (including cache hits).
    pub scenarios: u64,
    /// Answered from the in-memory result cache.
    pub memory_hits: u64,
    /// Answered from the persistent store.
    pub disk_hits: u64,
    /// Actually simulated (cache misses).
    pub simulated: u64,
    /// Requests that joined an identical in-flight scenario.
    pub coalesced: u64,
    /// Submissions rejected by admission control.
    pub busy_rejections: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Store reads that failed verification (treated as misses) plus
    /// failed writes.
    pub store_errors: u64,
    /// Scenarios currently admitted (queued + running).
    pub queue_depth: u32,
    /// Leader simulations executing right now (admitted minus waiters
    /// and pool backlog).
    pub inflight: u32,
    /// Admission-control capacity.
    pub capacity: u32,
    /// Per-request latency, log2-bucketed (ns): nonzero `(lo, hi, count)`
    /// buckets.
    pub latency_buckets: Vec<HistBucket>,
    /// Latency sample count.
    pub latency_count: u64,
    /// Fastest request (ns); 0 when no samples.
    pub latency_min: u64,
    /// Slowest request (ns).
    pub latency_max: u64,
    /// Process file-descriptor soft limit (0 when unknown on this
    /// platform); bounds how many connections the daemon can hold.
    pub fd_limit: u64,
    /// Accept failures (fd-exhaustion backoffs, peer aborts).
    pub accept_errors: u64,
}

impl ServerStats {
    /// Upper bound of the bucket holding the `q`-quantile of request
    /// latency, reconstructed from the transmitted buckets (exact at
    /// power-of-two granularity). Returns 0 with no samples.
    pub fn latency_quantile_upper(&self, q: f64) -> u64 {
        let mut h = ghost_obs::Log2Hist::new();
        for &(lo, _hi, c) in &self.latency_buckets {
            h.record_n(lo, c);
        }
        h.quantile_upper(q)
    }
}

fn enc_stats(e: &mut Enc, s: &ServerStats) {
    e.u64(s.uptime_ms);
    e.u64(s.requests);
    e.u64(s.scenarios);
    e.u64(s.memory_hits);
    e.u64(s.disk_hits);
    e.u64(s.simulated);
    e.u64(s.coalesced);
    e.u64(s.busy_rejections);
    e.u64(s.decode_errors);
    e.u64(s.store_errors);
    e.u32(s.queue_depth);
    e.u32(s.inflight);
    e.u32(s.capacity);
    e.usize(s.latency_buckets.len());
    for &(lo, hi, c) in &s.latency_buckets {
        e.u64(lo);
        e.u64(hi);
        e.u64(c);
    }
    e.u64(s.latency_count);
    e.u64(s.latency_min);
    e.u64(s.latency_max);
    e.u64(s.fd_limit);
    e.u64(s.accept_errors);
}

fn dec_stats(d: &mut Dec) -> Result<ServerStats, WireError> {
    let uptime_ms = d.u64()?;
    let requests = d.u64()?;
    let scenarios = d.u64()?;
    let memory_hits = d.u64()?;
    let disk_hits = d.u64()?;
    let simulated = d.u64()?;
    let coalesced = d.u64()?;
    let busy_rejections = d.u64()?;
    let decode_errors = d.u64()?;
    let store_errors = d.u64()?;
    let queue_depth = d.u32()?;
    let inflight = d.u32()?;
    let capacity = d.u32()?;
    let n = d.count()?;
    let latency_buckets = (0..n)
        .map(|_| Ok((d.u64()?, d.u64()?, d.u64()?)))
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(ServerStats {
        uptime_ms,
        requests,
        scenarios,
        memory_hits,
        disk_hits,
        simulated,
        coalesced,
        busy_rejections,
        decode_errors,
        store_errors,
        queue_depth,
        inflight,
        capacity,
        latency_buckets,
        latency_count: d.u64()?,
        latency_min: d.u64()?,
        latency_max: d.u64()?,
        fd_limit: d.u64()?,
        accept_errors: d.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Requests and responses

/// Number of key-range buckets in an anti-entropy digest exchange. Both
/// sides of a `SyncDigest` round must agree on this; keys map to buckets
/// via `ghost_core::scenario::shard_of(key_hash, SYNC_BUCKETS)`.
pub const SYNC_BUCKETS: usize = 16;

/// One anti-entropy digest bucket: `(entry count, xor of mixed per-entry
/// hash/checksum pairs)`. Byte-identity of results makes this exact: two
/// stores holding the same keys produce the same digest, and any
/// difference is a provable divergence, not a heuristic.
pub type SyncBucket = (u64, u64);

/// What a client can ask of the server.
///
/// Tags 0–4 are the baseline v1 request set; tags 5–9 are the fleet
/// peer-to-peer set and must arrive in a [`FLEET_VERSION`] frame (see
/// [`Request::required_version`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) one scenario.
    Submit(ScenarioSpec),
    /// Run a batch of scenarios; distinct cells go to the work-stealing
    /// pool, identical cells coalesce.
    Sweep(Vec<ScenarioSpec>),
    /// Snapshot the server's counters and latency histogram.
    Stats,
    /// Drain in-flight work and exit.
    Shutdown,
    /// Export the server's recent request-stage spans as Chrome
    /// trace-event JSON.
    Trace,
    /// Peer-to-peer: run this scenario *locally* — the sender already
    /// decided the receiver owns the key, so the receiver must never
    /// re-forward (that property is what makes routing loop-free).
    Forward(ScenarioSpec),
    /// Peer-to-peer heartbeat + membership exchange: `from` is the
    /// sender's advertised address, `peers` everyone it knows.
    Gossip {
        /// The sender's advertised listen address.
        from: String,
        /// Every peer address the sender currently knows (including
        /// itself).
        peers: Vec<String>,
    },
    /// Ask a peer for its per-bucket store digest.
    SyncDigest,
    /// Ask a peer for every key hash it holds in one digest bucket.
    SyncList {
        /// Bucket index in `0..SYNC_BUCKETS`.
        bucket: u8,
    },
    /// Pull one store entry (canonical key + value bytes) by key hash.
    Fetch {
        /// `content_hash` of the canonical scenario key bytes.
        key_hash: u64,
    },
    /// Pipelined sweep chunk: like [`Request::Sweep`] but tagged with a
    /// client-chosen id and answered by a [`Response::Batch`] that may
    /// arrive *out of order* relative to other replies on the same
    /// connection. This is what lets a client keep many chunks in flight
    /// on one connection and pay one round-trip for the whole sweep.
    SubmitBatch {
        /// Client-chosen correlation id, echoed in the reply.
        id: u64,
        /// The cells of this chunk.
        specs: Vec<ScenarioSpec>,
    },
}

impl Request {
    /// The minimum frame version a request may legally travel in. The
    /// fleet set is gated behind [`FLEET_VERSION`] so that a v1 client
    /// can never trip peer-only code paths by accident.
    pub fn required_version(&self) -> u16 {
        match self {
            Request::Submit(_)
            | Request::Sweep(_)
            | Request::Stats
            | Request::Shutdown
            | Request::Trace => VERSION,
            Request::Forward(_)
            | Request::Gossip { .. }
            | Request::SyncDigest
            | Request::SyncList { .. }
            | Request::Fetch { .. }
            | Request::SubmitBatch { .. } => FLEET_VERSION,
        }
    }
}

/// A raw store entry as it travels over the wire: `(key bytes, value
/// bytes)`, or `None` when the peer does not hold the key.
pub type RawEntry = Option<(Vec<u8>, Vec<u8>)>;

/// The payload of a [`Response::Batch`]: per-cell results in chunk order,
/// or `Err((active, capacity))` when admission control rejected the whole
/// chunk (the batch analogue of [`Response::Busy`], carried inside the
/// batch reply so the id correlation survives).
pub type BatchSlots = Result<Vec<Result<ScenarioReply, String>>, (u32, u32)>;

/// What the server answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed scenario.
    Scenario(Box<ScenarioReply>),
    /// Per-cell results of a sweep, in request order.
    Sweep(Vec<Result<ScenarioReply, String>>),
    /// Observability snapshot.
    Stats(Box<ServerStats>),
    /// Admission control rejected the submission; retry later.
    Busy {
        /// Scenarios currently admitted.
        active: u32,
        /// The admission cap.
        capacity: u32,
    },
    /// Acknowledges a shutdown request; the server drains and exits.
    ShutdownAck,
    /// The request could not be decoded or failed; the connection is still
    /// usable if the frame header was intact.
    Error(String),
    /// Chrome trace-event JSON of the server's recent request stages.
    Trace(String),
    /// Answer to a gossip round: the receiver's current peer view, so
    /// membership spreads transitively through the mesh.
    Gossip {
        /// Every peer address the receiver knows after the merge.
        peers: Vec<String>,
    },
    /// Answer to a digest request: exactly [`SYNC_BUCKETS`] buckets.
    SyncDigest {
        /// Per-bucket `(count, xor)` digests.
        buckets: Vec<SyncBucket>,
    },
    /// Answer to a bucket listing: every key hash in the bucket.
    SyncList {
        /// Store key hashes (file-name hashes) in the requested bucket.
        hashes: Vec<u64>,
    },
    /// Answer to a fetch: the raw store entry, or `None` if the key is
    /// absent (or its file failed verification and read as a miss).
    Entry(RawEntry),
    /// Answer to a [`Request::SubmitBatch`], correlated by id rather than
    /// reply order — the one response kind that may overtake others on
    /// the same connection.
    Batch {
        /// The id the client chose for this chunk.
        id: u64,
        /// Per-cell results, or a busy rejection for the whole chunk.
        slots: BatchSlots,
    },
}

/// Encode a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc::default();
    match req {
        Request::Submit(s) => {
            e.u8(0);
            enc_scenario(&mut e, s);
        }
        Request::Sweep(specs) => {
            e.u8(1);
            e.usize(specs.len());
            for s in specs {
                enc_scenario(&mut e, s);
            }
        }
        Request::Stats => e.u8(2),
        Request::Shutdown => e.u8(3),
        Request::Trace => e.u8(4),
        Request::Forward(s) => {
            e.u8(5);
            enc_scenario(&mut e, s);
        }
        Request::Gossip { from, peers } => {
            e.u8(6);
            e.str(from);
            e.usize(peers.len());
            for p in peers {
                e.str(p);
            }
        }
        Request::SyncDigest => e.u8(7),
        Request::SyncList { bucket } => {
            e.u8(8);
            e.u8(*bucket);
        }
        Request::Fetch { key_hash } => {
            e.u8(9);
            e.u64(*key_hash);
        }
        Request::SubmitBatch { id, specs } => {
            e.u8(10);
            e.u64(*id);
            e.usize(specs.len());
            for s in specs {
                enc_scenario(&mut e, s);
            }
        }
    }
    e.0
}

/// Decode a request from a frame payload (strict: full consumption).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec::new(payload);
    let req = match d.u8()? {
        0 => Request::Submit(dec_scenario(&mut d)?),
        1 => {
            let n = d.count()?;
            let specs = (0..n)
                .map(|_| dec_scenario(&mut d))
                .collect::<Result<Vec<_>, _>>()?;
            Request::Sweep(specs)
        }
        2 => Request::Stats,
        3 => Request::Shutdown,
        4 => Request::Trace,
        5 => Request::Forward(dec_scenario(&mut d)?),
        6 => {
            let from = d.str()?;
            let n = d.count()?;
            let peers = (0..n).map(|_| d.str()).collect::<Result<Vec<_>, _>>()?;
            Request::Gossip { from, peers }
        }
        7 => Request::SyncDigest,
        8 => Request::SyncList { bucket: d.u8()? },
        9 => Request::Fetch { key_hash: d.u64()? },
        10 => {
            let id = d.u64()?;
            let n = d.count()?;
            let specs = (0..n)
                .map(|_| dec_scenario(&mut d))
                .collect::<Result<Vec<_>, _>>()?;
            Request::SubmitBatch { id, specs }
        }
        t => return Err(WireError::UnknownTag(t)),
    };
    d.finish()?;
    Ok(req)
}

/// Encode a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = Enc::default();
    match resp {
        Response::Scenario(r) => {
            e.u8(0);
            enc_reply(&mut e, r);
        }
        Response::Sweep(slots) => {
            e.u8(1);
            e.usize(slots.len());
            for slot in slots {
                match slot {
                    Ok(r) => {
                        e.u8(1);
                        enc_reply(&mut e, r);
                    }
                    Err(msg) => {
                        e.u8(0);
                        e.str(msg);
                    }
                }
            }
        }
        Response::Stats(s) => {
            e.u8(2);
            enc_stats(&mut e, s);
        }
        Response::Busy { active, capacity } => {
            e.u8(3);
            e.u32(*active);
            e.u32(*capacity);
        }
        Response::ShutdownAck => e.u8(4),
        Response::Error(msg) => {
            e.u8(5);
            e.str(msg);
        }
        Response::Trace(json) => {
            e.u8(6);
            e.str(json);
        }
        Response::Gossip { peers } => {
            e.u8(7);
            e.usize(peers.len());
            for p in peers {
                e.str(p);
            }
        }
        Response::SyncDigest { buckets } => {
            e.u8(8);
            e.usize(buckets.len());
            for &(count, xor) in buckets {
                e.u64(count);
                e.u64(xor);
            }
        }
        Response::SyncList { hashes } => {
            e.u8(9);
            e.usize(hashes.len());
            for &h in hashes {
                e.u64(h);
            }
        }
        Response::Entry(entry) => {
            e.u8(10);
            match entry {
                None => e.u8(0),
                Some((key, value)) => {
                    e.u8(1);
                    e.bytes(key);
                    e.bytes(value);
                }
            }
        }
        Response::Batch { id, slots } => {
            e.u8(11);
            e.u64(*id);
            match slots {
                Err((active, capacity)) => {
                    e.u8(0);
                    e.u32(*active);
                    e.u32(*capacity);
                }
                Ok(cells) => {
                    e.u8(1);
                    e.usize(cells.len());
                    for cell in cells {
                        match cell {
                            Ok(r) => {
                                e.u8(1);
                                enc_reply(&mut e, r);
                            }
                            Err(msg) => {
                                e.u8(0);
                                e.str(msg);
                            }
                        }
                    }
                }
            }
        }
    }
    e.0
}

/// Decode a response from a frame payload (strict: full consumption).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut d = Dec::new(payload);
    let resp = match d.u8()? {
        0 => Response::Scenario(Box::new(dec_reply(&mut d)?)),
        1 => {
            let n = d.count()?;
            let slots = (0..n)
                .map(|_| {
                    Ok(match d.u8()? {
                        1 => Ok(dec_reply(&mut d)?),
                        0 => Err(d.str()?),
                        t => return Err(WireError::UnknownTag(t)),
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Response::Sweep(slots)
        }
        2 => Response::Stats(Box::new(dec_stats(&mut d)?)),
        3 => Response::Busy {
            active: d.u32()?,
            capacity: d.u32()?,
        },
        4 => Response::ShutdownAck,
        5 => Response::Error(d.str()?),
        6 => Response::Trace(d.str()?),
        7 => {
            let n = d.count()?;
            let peers = (0..n).map(|_| d.str()).collect::<Result<Vec<_>, _>>()?;
            Response::Gossip { peers }
        }
        8 => {
            let n = d.count()?;
            let buckets = (0..n)
                .map(|_| Ok((d.u64()?, d.u64()?)))
                .collect::<Result<Vec<_>, WireError>>()?;
            Response::SyncDigest { buckets }
        }
        9 => {
            let n = d.count()?;
            let hashes = (0..n).map(|_| d.u64()).collect::<Result<Vec<_>, _>>()?;
            Response::SyncList { hashes }
        }
        10 => Response::Entry(match d.u8()? {
            0 => None,
            1 => Some((d.bytes()?, d.bytes()?)),
            t => return Err(WireError::UnknownTag(t)),
        }),
        11 => {
            let id = d.u64()?;
            let slots = match d.u8()? {
                0 => Err((d.u32()?, d.u32()?)),
                1 => {
                    let n = d.count()?;
                    let cells = (0..n)
                        .map(|_| {
                            Ok(match d.u8()? {
                                1 => Ok(dec_reply(&mut d)?),
                                0 => Err(d.str()?),
                                t => return Err(WireError::UnknownTag(t)),
                            })
                        })
                        .collect::<Result<Vec<_>, WireError>>()?;
                    Ok(cells)
                }
                t => return Err(WireError::UnknownTag(t)),
            };
            Response::Batch { id, slots }
        }
        t => return Err(WireError::UnknownTag(t)),
    };
    d.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_engine::time::MS;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            workload: WorkloadSpec::Pop { steps: 2 },
            machine: ExperimentSpec::torus(64, 42),
            injection: InjectionSpec {
                faults: FaultPlan::new()
                    .with_delay(3, 5 * MS, MS)
                    .with_straggler(1, 1500)
                    .with_crash(7, 80 * MS),
                drop_ppm: 250,
                ..InjectionSpec::uncoordinated(10.0, 0.025)
            },
        }
    }

    #[test]
    fn scenario_roundtrips() {
        let s = spec();
        let bytes = scenario_key_bytes(&s);
        let mut d = Dec::new(&bytes);
        let back = dec_scenario(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn contended_dragonfly_machines_roundtrip() {
        let mut s = spec();
        s.machine.topo = TopoPreset::Dragonfly {
            groups: 9,
            routers: 4,
            hosts: 2,
        };
        s.machine = s.machine.with_contention(1500, Routing::Ugal);
        let bytes = scenario_key_bytes(&s);
        let mut d = Dec::new(&bytes);
        let back = dec_scenario(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(s, back);
        // Contention participates in the content address.
        assert_ne!(bytes, scenario_key_bytes(&spec()));
    }

    #[test]
    fn unknown_routing_tags_are_rejected() {
        let s = spec();
        let mut bytes = scenario_key_bytes(&s);
        // The routing tag is the final machine byte; corrupt it. Locate it
        // by re-encoding just the machine half.
        let mut m = Enc::default();
        enc_machine(&mut m, &s.machine);
        let mut w = Enc::default();
        enc_workload(&mut w, &s.workload);
        let routing_at = w.0.len() + m.0.len() - 1;
        bytes[routing_at] = 9;
        let mut d = Dec::new(&bytes);
        assert_eq!(dec_scenario(&mut d).unwrap_err(), WireError::UnknownTag(9));
    }

    #[test]
    fn request_roundtrips() {
        for req in [
            Request::Submit(spec()),
            Request::Sweep(vec![spec(), spec()]),
            Request::Stats,
            Request::Shutdown,
            Request::Trace,
            Request::Forward(spec()),
            Request::Gossip {
                from: "127.0.0.1:9001".into(),
                peers: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
            },
            Request::SyncDigest,
            Request::SyncList { bucket: 13 },
            Request::Fetch {
                key_hash: 0xdead_beef_cafe_f00d,
            },
            Request::SubmitBatch {
                id: 42,
                specs: vec![spec(), spec()],
            },
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn fleet_requests_are_version_gated() {
        // Tags 0-4 travel at v1; the peer-to-peer set demands v2 frames.
        assert_eq!(Request::Stats.required_version(), VERSION);
        assert_eq!(Request::Submit(spec()).required_version(), VERSION);
        for req in [
            Request::Forward(spec()),
            Request::Gossip {
                from: String::new(),
                peers: vec![],
            },
            Request::SyncDigest,
            Request::SyncList { bucket: 0 },
            Request::Fetch { key_hash: 0 },
            Request::SubmitBatch {
                id: 0,
                specs: vec![],
            },
        ] {
            assert_eq!(req.required_version(), FLEET_VERSION);
        }
    }

    #[test]
    fn response_roundtrips() {
        let reply = ScenarioReply {
            label: "pop/64n".into(),
            injected_ppm: 25_000,
            baseline: RunResult {
                makespan: 10,
                finish_times: vec![9, 10],
                final_values: vec![None, Some(1.5)],
                compute_work: vec![4, 4],
                blocked_time: vec![1, 0],
                messages: 12,
                events: 99,
                retransmits: 0,
                failed_ranks: vec![],
            },
            run: RunResult {
                makespan: 14,
                finish_times: vec![14, 13],
                final_values: vec![Some(2.0), None],
                compute_work: vec![4, 4],
                blocked_time: vec![3, 2],
                messages: 12,
                events: 120,
                retransmits: 2,
                failed_ranks: vec![1],
            },
        };
        for resp in [
            Response::Scenario(Box::new(reply.clone())),
            Response::Sweep(vec![Ok(reply.clone()), Err("deadlock".into())]),
            Response::Stats(Box::new(ServerStats {
                requests: 5,
                latency_buckets: vec![(1, 2, 3)],
                ..ServerStats::default()
            })),
            Response::Busy {
                active: 7,
                capacity: 8,
            },
            Response::ShutdownAck,
            Response::Error("nope".into()),
            Response::Trace("{\"traceEvents\":[]}".into()),
            Response::Gossip {
                peers: vec!["127.0.0.1:9001".into()],
            },
            Response::SyncDigest {
                buckets: vec![(0, 0); SYNC_BUCKETS],
            },
            Response::SyncList {
                hashes: vec![1, 2, u64::MAX],
            },
            Response::Entry(None),
            Response::Entry(Some((vec![1, 2, 3], vec![4, 5]))),
            Response::Batch {
                id: 42,
                slots: Ok(vec![Ok(reply.clone()), Err("deadlock".into())]),
            },
            Response::Batch {
                id: 7,
                slots: Err((9, 16)),
            },
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap_err(), WireError::Closed);
    }

    #[test]
    fn versioned_frames_carry_their_version() {
        let mut buf = Vec::new();
        write_frame_v(&mut buf, VERSION, b"old").unwrap();
        write_frame_v(&mut buf, FLEET_VERSION, b"new").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame_versioned(&mut r).unwrap(),
            (VERSION, b"old".to_vec())
        );
        assert_eq!(
            read_frame_versioned(&mut r).unwrap(),
            (FLEET_VERSION, b"new".to_vec())
        );
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut buf = Vec::new();
        write_frame_v(&mut buf, MAX_VERSION + 1, b"x").unwrap();
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err(),
            WireError::BadVersion(MAX_VERSION + 1)
        );
    }

    #[test]
    fn socket_timeouts_map_to_timed_out() {
        struct Stall;
        impl std::io::Read for Stall {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        assert_eq!(read_frame(&mut Stall).unwrap_err(), WireError::TimedOut);
        assert!(!WireError::TimedOut.recoverable());
    }

    #[test]
    fn bad_magic_is_unrecoverable() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf[0] ^= 0xff;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, WireError::BadMagic(_)));
        assert!(!err.recoverable());
    }

    #[test]
    fn oversize_length_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err(),
            WireError::Oversize(u32::MAX)
        );
    }

    #[test]
    fn corrupt_count_fields_fail_fast() {
        // A Sweep request claiming 2^40 specs backed by 2 bytes.
        let mut e = Enc::default();
        e.u8(1);
        e.u64(1 << 40);
        e.u16(0);
        assert!(matches!(
            decode_request(&e.0).unwrap_err(),
            WireError::BadLength(_) | WireError::Truncated
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = encode_request(&Request::Stats);
        bytes.push(0);
        assert_eq!(
            decode_request(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn content_hash_is_stable_and_spread() {
        let a = content_hash(b"abc");
        assert_eq!(a, content_hash(b"abc"));
        assert_ne!(a, content_hash(b"abd"));
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
    }
}

//! Blocking client for the ghost-serve protocol.
//!
//! One TCP connection, one request in flight at a time. Every method maps
//! the server's typed responses onto [`ClientError`], so callers see
//! `Busy`/`Server`/`Wire` distinctly — the CLI turns these into its
//! 0/1/2 exit-code contract.

use std::io::{Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use ghost_core::scenario::ScenarioSpec;

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, ScenarioReply,
    ServerStats, WireError,
};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting or talking to the server failed at the socket level.
    Io(String),
    /// The server's bytes did not decode as a response.
    Wire(WireError),
    /// Admission control rejected the submission; retry later.
    Busy {
        /// Scenarios admitted when the request arrived.
        active: u32,
        /// The server's admission cap.
        capacity: u32,
    },
    /// The server processed the request and reported a failure.
    Server(String),
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { active, capacity } => {
                write!(f, "server busy ({active}/{capacity} scenarios admitted)")
            }
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected response kind: {kind}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(msg) => ClientError::Io(msg),
            WireError::Closed => ClientError::Io("connection closed".into()),
            other => ClientError::Wire(other),
        }
    }
}

/// A connected ghost-serve client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        // Request/response over small frames: never batch under Nagle.
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?;
        Ok(decode_response(&payload)?)
    }

    /// Map the error-ish response kinds shared by every request.
    fn reject(resp: Response, want: &str) -> ClientError {
        match resp {
            Response::Busy { active, capacity } => ClientError::Busy { active, capacity },
            Response::Error(e) => ClientError::Server(e),
            other => ClientError::Unexpected(format!("{other:?} (wanted {want})")),
        }
    }

    /// Run (or fetch) one scenario.
    pub fn submit(&mut self, spec: &ScenarioSpec) -> Result<ScenarioReply, ClientError> {
        match self.call(&Request::Submit(spec.clone()))? {
            Response::Scenario(reply) => Ok(*reply),
            other => Err(Self::reject(other, "Scenario")),
        }
    }

    /// Run (or fetch) a batch; per-cell results come back in request order.
    pub fn sweep(
        &mut self,
        specs: &[ScenarioSpec],
    ) -> Result<Vec<Result<ScenarioReply, String>>, ClientError> {
        match self.call(&Request::Sweep(specs.to_vec()))? {
            Response::Sweep(slots) => Ok(slots),
            other => Err(Self::reject(other, "Sweep")),
        }
    }

    /// Snapshot the server's counters and latency histogram.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            other => Err(Self::reject(other, "Stats")),
        }
    }

    /// Fetch the server's recent request-stage spans as Chrome trace-event
    /// JSON (empty `traceEvents` when the server runs with tracing off).
    pub fn server_trace(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Trace)? {
            Response::Trace(json) => Ok(json),
            other => Err(Self::reject(other, "Trace")),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(Self::reject(other, "ShutdownAck")),
        }
    }
}

/// Scrape `GET /metrics` from a running server over plain HTTP — the same
/// listener that speaks the binary protocol — and return the exposition
/// body. Standalone (no [`Client`]) because the server closes the HTTP
/// connection after one response.
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: ghost-serve\r\nConnection: close\r\n\r\n")
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let text = String::from_utf8(raw)
        .map_err(|_| ClientError::Unexpected("non-UTF-8 scrape response".into()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::Unexpected("malformed HTTP response".into()))?;
    let status = head.lines().next().unwrap_or("");
    if !status.starts_with("HTTP/1.1 200") {
        return Err(ClientError::Server(format!("scrape failed: {status}")));
    }
    Ok(body.to_owned())
}

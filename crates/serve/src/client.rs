//! Blocking client for the ghost-serve protocol.
//!
//! One TCP connection, one request in flight at a time. Every method maps
//! the server's typed responses onto [`ClientError`], so callers see
//! `Busy`/`Server`/`Wire` distinctly — the CLI turns these into its
//! 0/1/2 exit-code contract.
//!
//! Transient failures (a busy server, a refused or dropped connection, a
//! socket timeout) are *expected* in a fleet, so the module also provides
//! [`RetryPolicy`] — exponential backoff with jitter under an overall
//! deadline — and [`call_with_retry`], which reconnects per attempt and
//! reports exhaustion as the distinct [`ClientError::Exhausted`] so
//! callers can tell "kept failing transiently" from "hard error".

use std::io::{Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use ghost_core::scenario::{mix64, ScenarioSpec};

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame_v, BatchSlots, RawEntry, Request,
    Response, ScenarioReply, ServerStats, SyncBucket, WireError,
};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting or talking to the server failed at the socket level.
    Io(String),
    /// The server's bytes did not decode as a response.
    Wire(WireError),
    /// Admission control rejected the submission; retry later.
    Busy {
        /// Scenarios admitted when the request arrived.
        active: u32,
        /// The server's admission cap.
        capacity: u32,
    },
    /// The server processed the request and reported a failure.
    Server(String),
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
    /// A retry policy ran out of attempts or deadline; `last` is the final
    /// transient failure. Distinct from a hard error: the request never
    /// got a definitive answer, so trying again later is reasonable.
    Exhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The last transient error observed.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { active, capacity } => {
                write!(f, "server busy ({active}/{capacity} scenarios admitted)")
            }
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected response kind: {kind}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether retrying the same request later could plausibly succeed:
    /// admission-control rejections and socket-level failures (refused,
    /// reset, timed out) are transient; protocol and server-side errors
    /// are deterministic and retrying would only repeat them.
    pub fn transient(&self) -> bool {
        matches!(self, ClientError::Busy { .. } | ClientError::Io(_))
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(msg) => ClientError::Io(msg),
            WireError::Closed => ClientError::Io("connection closed".into()),
            WireError::TimedOut => ClientError::Io("socket timed out".into()),
            other => ClientError::Wire(other),
        }
    }
}

/// Exponential backoff with half-jitter under an overall deadline.
///
/// Attempt `n` (1-based) sleeps `base_ms << (n-1)` capped at `cap_ms`,
/// then halved with the other half drawn pseudo-randomly — jitter keeps a
/// fleet of clients that failed together from retrying in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single shot).
    pub retries: u32,
    /// First backoff step in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
    /// Overall budget across all attempts and sleeps; 0 = unlimited.
    pub deadline_ms: u64,
    /// Per-attempt socket timeout (connect, read, write); 0 = none.
    pub timeout_ms: u64,
}

impl RetryPolicy {
    /// Single attempt, no timeouts — the pre-fleet behavior.
    pub fn none() -> Self {
        Self {
            retries: 0,
            base_ms: 0,
            cap_ms: 0,
            deadline_ms: 0,
            timeout_ms: 0,
        }
    }

    /// A sensible interactive default: `retries` extra attempts starting
    /// at 50 ms backoff, capped at 2 s, under `deadline_ms`.
    pub fn standard(retries: u32, deadline_ms: u64) -> Self {
        Self {
            retries,
            base_ms: 50,
            cap_ms: 2_000,
            deadline_ms,
            timeout_ms: 5_000,
        }
    }

    /// The jittered sleep before retry number `attempt` (1-based), in ms.
    fn backoff_ms(&self, attempt: u32, salt: u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.cap_ms.max(self.base_ms));
        if exp == 0 {
            return 0;
        }
        let half = exp / 2;
        half + mix64(salt ^ u64::from(attempt)) % (exp - half + 1)
    }
}

/// Run `op` over a fresh connection per attempt, retrying transient
/// failures per `policy`. A non-transient error returns immediately;
/// running out of attempts or deadline returns
/// [`ClientError::Exhausted`] wrapping the last transient failure.
pub fn call_with_retry<A, T, F>(addr: &A, policy: RetryPolicy, mut op: F) -> Result<T, ClientError>
where
    A: ToSocketAddrs + ?Sized,
    F: FnMut(&mut Client) -> Result<T, ClientError>,
{
    static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let start = Instant::now();
    let salt = mix64(
        u64::from(std::process::id())
            ^ NONCE
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                .rotate_left(32),
    );
    let mut attempts = 0u32;
    let mut last;
    loop {
        attempts += 1;
        let result =
            Client::connect_with_timeout(addr, policy.timeout_ms).and_then(|mut c| op(&mut c));
        match result {
            Ok(v) => return Ok(v),
            Err(e) if !e.transient() => return Err(e),
            Err(e) => last = e,
        }
        if attempts > policy.retries {
            break;
        }
        let sleep_ms = policy.backoff_ms(attempts, salt);
        if policy.deadline_ms > 0
            && (start.elapsed().as_millis() as u64).saturating_add(sleep_ms) >= policy.deadline_ms
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(sleep_ms));
    }
    Err(ClientError::Exhausted {
        attempts,
        last: Box::new(last),
    })
}

/// A connected ghost-serve client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        // Request/response over small frames: never batch under Nagle.
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// Connect with a bound on connect *and* per-read/write socket time —
    /// what every fleet peer-to-peer call uses, so a stalled peer costs a
    /// timeout, never a wedged thread. `timeout_ms == 0` means unbounded.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout_ms: u64,
    ) -> Result<Self, ClientError> {
        if timeout_ms == 0 {
            return Self::connect(addr);
        }
        let timeout = Duration::from_millis(timeout_ms);
        let mut last = None;
        let addrs = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        for sock in addrs {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(timeout));
                    let _ = stream.set_write_timeout(Some(timeout));
                    return Ok(Self { stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(match last {
            Some(e) => e.to_string(),
            None => "address resolved to nothing".into(),
        }))
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        // Fleet requests travel in v2 frames; the legacy set stays at v1
        // so a pre-fleet server keeps answering this client.
        write_frame_v(
            &mut self.stream,
            req.required_version(),
            &encode_request(req),
        )?;
        let payload = read_frame(&mut self.stream)?;
        Ok(decode_response(&payload)?)
    }

    /// Map the error-ish response kinds shared by every request.
    fn reject(resp: Response, want: &str) -> ClientError {
        match resp {
            Response::Busy { active, capacity } => ClientError::Busy { active, capacity },
            Response::Error(e) => ClientError::Server(e),
            other => ClientError::Unexpected(format!("{other:?} (wanted {want})")),
        }
    }

    /// Run (or fetch) one scenario.
    pub fn submit(&mut self, spec: &ScenarioSpec) -> Result<ScenarioReply, ClientError> {
        match self.call(&Request::Submit(spec.clone()))? {
            Response::Scenario(reply) => Ok(*reply),
            other => Err(Self::reject(other, "Scenario")),
        }
    }

    /// Run (or fetch) a batch; per-cell results come back in request order.
    pub fn sweep(
        &mut self,
        specs: &[ScenarioSpec],
    ) -> Result<Vec<Result<ScenarioReply, String>>, ClientError> {
        match self.call(&Request::Sweep(specs.to_vec()))? {
            Response::Sweep(slots) => Ok(slots),
            other => Err(Self::reject(other, "Sweep")),
        }
    }

    /// Snapshot the server's counters and latency histogram.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            other => Err(Self::reject(other, "Stats")),
        }
    }

    /// Fetch the server's recent request-stage spans as Chrome trace-event
    /// JSON (empty `traceEvents` when the server runs with tracing off).
    pub fn server_trace(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Trace)? {
            Response::Trace(json) => Ok(json),
            other => Err(Self::reject(other, "Trace")),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(Self::reject(other, "ShutdownAck")),
        }
    }

    // -- Fleet peer-to-peer calls (v2 frames) -------------------------------

    /// Hand a scenario to the peer that owns its key; the receiver runs it
    /// locally (never re-forwards) and answers like a `Submit`.
    pub fn forward(&mut self, spec: &ScenarioSpec) -> Result<ScenarioReply, ClientError> {
        match self.call(&Request::Forward(spec.clone()))? {
            Response::Scenario(reply) => Ok(*reply),
            other => Err(Self::reject(other, "Scenario")),
        }
    }

    /// One heartbeat: announce ourselves and our peer view, receive the
    /// receiver's merged view back.
    pub fn gossip(&mut self, from: &str, peers: &[String]) -> Result<Vec<String>, ClientError> {
        let req = Request::Gossip {
            from: from.to_owned(),
            peers: peers.to_vec(),
        };
        match self.call(&req)? {
            Response::Gossip { peers } => Ok(peers),
            other => Err(Self::reject(other, "Gossip")),
        }
    }

    /// Fetch the peer's per-bucket anti-entropy store digest.
    pub fn sync_digest(&mut self) -> Result<Vec<SyncBucket>, ClientError> {
        match self.call(&Request::SyncDigest)? {
            Response::SyncDigest { buckets } => Ok(buckets),
            other => Err(Self::reject(other, "SyncDigest")),
        }
    }

    /// List every key hash the peer holds in one digest bucket.
    pub fn sync_list(&mut self, bucket: u8) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::SyncList { bucket })? {
            Response::SyncList { hashes } => Ok(hashes),
            other => Err(Self::reject(other, "SyncList")),
        }
    }

    /// Pull one raw store entry (key + value bytes) by key hash.
    pub fn fetch(&mut self, key_hash: u64) -> Result<RawEntry, ClientError> {
        match self.call(&Request::Fetch { key_hash })? {
            Response::Entry(entry) => Ok(entry),
            other => Err(Self::reject(other, "Entry")),
        }
    }

    // -- Pipelined sweeps (v2 frames) ----------------------------------------

    /// Fire one `SubmitBatch` chunk without waiting for its reply. Pair
    /// with [`Client::read_batch`]; replies correlate by `id` and may
    /// arrive out of order relative to other in-flight chunks.
    pub fn send_batch(&mut self, id: u64, specs: &[ScenarioSpec]) -> Result<(), ClientError> {
        let req = Request::SubmitBatch {
            id,
            specs: specs.to_vec(),
        };
        write_frame_v(
            &mut self.stream,
            req.required_version(),
            &encode_request(&req),
        )?;
        Ok(())
    }

    /// Read the next batch reply off the connection. Returns `(id, slots)`;
    /// the id says which in-flight chunk this answers.
    pub fn read_batch(&mut self) -> Result<(u64, BatchSlots), ClientError> {
        let payload = read_frame(&mut self.stream)?;
        match decode_response(&payload)? {
            Response::Batch { id, slots } => Ok((id, slots)),
            other => Err(Self::reject(other, "Batch")),
        }
    }

    /// Run a sweep with request pipelining: the cells are cut into chunks
    /// of at most `batch` and *all* chunks are written before any reply is
    /// read, so the whole sweep costs one round-trip of latency instead of
    /// one per chunk. Results come back in spec order regardless of the
    /// order the server finishes chunks. Any chunk-level busy rejection
    /// fails the sweep with [`ClientError::Busy`] (after draining the
    /// remaining replies so the connection stays usable).
    pub fn sweep_pipelined(
        &mut self,
        specs: &[ScenarioSpec],
        batch: usize,
    ) -> Result<Vec<Result<ScenarioReply, String>>, ClientError> {
        let batch = batch.max(1);
        let chunks: Vec<&[ScenarioSpec]> = specs.chunks(batch).collect();
        for (id, chunk) in chunks.iter().enumerate() {
            self.send_batch(id as u64, chunk)?;
        }
        let mut slots: Vec<Option<Vec<Result<ScenarioReply, String>>>> = vec![None; chunks.len()];
        let mut busy = None;
        for _ in 0..chunks.len() {
            let (id, reply) = self.read_batch()?;
            let slot = slots
                .get_mut(id as usize)
                .ok_or_else(|| ClientError::Unexpected(format!("unknown batch id {id}")))?;
            match reply {
                Ok(cells) => *slot = Some(cells),
                Err((active, capacity)) => busy = Some(ClientError::Busy { active, capacity }),
            }
        }
        if let Some(e) = busy {
            return Err(e);
        }
        let mut out = Vec::with_capacity(specs.len());
        for (id, slot) in slots.into_iter().enumerate() {
            let cells = slot
                .ok_or_else(|| ClientError::Unexpected(format!("missing reply for batch {id}")))?;
            let want = chunks.get(id).map_or(0, |c| c.len());
            if cells.len() != want {
                return Err(ClientError::Unexpected(format!(
                    "batch {id} answered {} cells for {want} specs",
                    cells.len()
                )));
            }
            out.extend(cells);
        }
        Ok(out)
    }
}

/// Scrape `GET /metrics` from a running server over plain HTTP — the same
/// listener that speaks the binary protocol — and return the exposition
/// body. Standalone (no [`Client`]) because the server closes the HTTP
/// connection after one response.
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: ghost-serve\r\nConnection: close\r\n\r\n")
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let text = String::from_utf8(raw)
        .map_err(|_| ClientError::Unexpected("non-UTF-8 scrape response".into()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::Unexpected("malformed HTTP response".into()))?;
    let status = head.lines().next().unwrap_or("");
    if !status.starts_with("HTTP/1.1 200") {
        return Err(ClientError::Server(format!("scrape failed: {status}")));
    }
    Ok(body.to_owned())
}

//! Chaos harness for ghost-fleet: boot N real daemons in-process, then
//! kill, restart, and partition them on a deterministic schedule while
//! checking the fleet's two invariants:
//!
//! 1. **No wrong answers under churn.** Every submission that completes —
//!    through any peer, with any subset of the fleet dead or partitioned —
//!    returns bytes identical to an in-process [`run_scenario`] of the
//!    same spec. Losing the key's owner degrades to local simulation, not
//!    to an error and never to a different answer.
//! 2. **Warm anywhere is warm everywhere.** After the churn ends and
//!    anti-entropy converges, every peer holds every warm key in its own
//!    store (byte-identical to the expected reply) and a full warm pass
//!    through every peer re-simulates nothing.
//!
//! The fault schedule reuses the simulator's own [`FaultPlan`] vocabulary,
//! reinterpreted at fleet scale: `Crash` kills a daemon for good, `Delay`
//! kills and later restarts it (same port, same store), and `Drop`
//! partitions it for a window (inbound connections accepted then dropped,
//! outbound gossip stopped). `at`/`from` times are simulated-time
//! nanoseconds in a [`FaultPlan`]; here they are wall-clock nanoseconds
//! since the churn started.
//!
//! The harness runs real TCP daemons with real stores — only the process
//! boundary is elided, which is what makes `kill` cheap enough to script.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ghost_core::scenario::{run_scenario, ScenarioSpec};
use ghost_mpi::RunLimits;
use ghost_noise::fault::{FaultKind, FaultPlan};

use crate::client::{call_with_retry, Client, ClientError, RetryPolicy};
use crate::fleet::FleetConfig;
use crate::server::{ServeConfig, Server, ServerHandle};
use crate::wire::{content_hash, scenario_key_bytes, RawEntry, ScenarioReply, ServerStats};

/// How a [`ClusterHarness`] is shaped: peer count, store location, and the
/// fleet timing knobs every peer shares.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of daemons to boot.
    pub peers: usize,
    /// Root directory for the per-peer stores (`<root>/peer-<i>`).
    pub store_root: PathBuf,
    /// Gossip interval (ms).
    pub heartbeat_ms: u64,
    /// Anti-entropy interval (ms).
    pub sync_ms: u64,
    /// Consecutive failures before a peer is suspected.
    pub suspect_after: u32,
    /// Peer-to-peer socket timeout (ms).
    pub rpc_timeout_ms: u64,
    /// Admission cap per daemon.
    pub capacity: usize,
}

impl ClusterConfig {
    /// Test-speed timings: tight heartbeats and sync so suspicion and
    /// convergence happen in tens of milliseconds, not seconds.
    pub fn quick(store_root: PathBuf, peers: usize) -> Self {
        Self {
            peers,
            store_root,
            heartbeat_ms: 25,
            sync_ms: 100,
            suspect_after: 3,
            rpc_timeout_ms: 1_000,
            capacity: 64,
        }
    }
}

/// One member of the cluster: its fixed address, its store directory, and
/// the live handle (`None` while killed).
struct Peer {
    addr: SocketAddr,
    store_dir: PathBuf,
    handle: Option<ServerHandle>,
}

/// N in-process ghost-serve daemons under lifecycle control.
pub struct ClusterHarness {
    config: ClusterConfig,
    peers: Vec<Peer>,
}

/// What one churn run observed; [`ChurnReport::ok`] is the invariant.
#[derive(Debug, Default)]
pub struct ChurnReport {
    /// Submissions attempted against live, unpartitioned peers.
    pub submissions: usize,
    /// Submissions that completed with a reply.
    pub served: usize,
    /// Completed replies whose bytes differed from the in-process run
    /// (must stay empty).
    pub mismatches: Vec<String>,
    /// Submissions that errored even with retries, despite targeting a
    /// live peer (must stay empty).
    pub failures: Vec<String>,
    /// Whether every peer held every warm key byte-identically after the
    /// settle window.
    pub converged: bool,
    /// Whether the post-churn warm pass matched everywhere.
    pub warm_everywhere: bool,
    /// Simulations performed during the warm pass (must be 0: everything
    /// was warm).
    pub resimulated_when_warm: u64,
    /// Human-readable event log (kills, restarts, partitions, checks).
    pub log: Vec<String>,
}

impl ChurnReport {
    /// Both fleet invariants held: nothing wrong, nothing lost.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
            && self.failures.is_empty()
            && self.converged
            && self.warm_everywhere
            && self.resimulated_when_warm == 0
    }
}

/// A scheduled chaos action, derived from one [`FaultKind`].
#[derive(Debug, Clone, Copy)]
enum Action {
    Kill(usize),
    Restart(usize),
    Partition(usize, bool),
}

impl ClusterHarness {
    /// Boot `config.peers` daemons. Each peer seeds from the peers booted
    /// before it; gossip completes the mesh (later peers introduce
    /// themselves to earlier ones on the first heartbeat).
    pub fn boot(config: ClusterConfig) -> std::io::Result<Self> {
        let mut peers: Vec<Peer> = Vec::with_capacity(config.peers);
        for i in 0..config.peers {
            let store_dir = config.store_root.join(format!("peer-{i}"));
            std::fs::create_dir_all(&store_dir)?;
            let seeds = peers.iter().map(|p| p.addr.to_string()).collect();
            let serve = peer_config(&config, &store_dir, String::new(), seeds);
            let handle = Server::bind("127.0.0.1:0", serve)?.spawn()?;
            peers.push(Peer {
                addr: handle.addr(),
                store_dir,
                handle: Some(handle),
            });
        }
        Ok(Self { config, peers })
    }

    /// Number of peers (dead or alive).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the cluster has no peers (a zero-peer config).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Peer `i`'s fixed address (stable across kill/restart).
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.peers[i].addr
    }

    /// Whether peer `i` is currently running.
    pub fn is_up(&self, i: usize) -> bool {
        self.peers[i]
            .handle
            .as_ref()
            .is_some_and(|h| !h.is_finished())
    }

    /// Whether peer `i` is up but partitioned.
    pub fn is_partitioned(&self, i: usize) -> bool {
        self.peers[i]
            .handle
            .as_ref()
            .is_some_and(|h| h.is_partitioned())
    }

    /// Hard-kill peer `i`: no drain, in-flight connections die. The port
    /// and store survive for a later [`ClusterHarness::restart`].
    pub fn kill(&mut self, i: usize) {
        // ServerHandle::drop is the hard kill.
        drop(self.peers[i].handle.take());
    }

    /// Restart a killed peer on its original port with its original
    /// store, seeded with every other peer. Binding retries briefly: the
    /// OS can hold the port for a moment after a kill.
    pub fn restart(&mut self, i: usize) -> std::io::Result<()> {
        if self.is_up(i) {
            return Ok(());
        }
        let addr = self.peers[i].addr;
        let seeds: Vec<String> = self
            .peers
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| p.addr.to_string())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        let server = loop {
            let serve = peer_config(
                &self.config,
                &self.peers[i].store_dir,
                addr.to_string(),
                seeds.clone(),
            );
            match Server::bind(addr, serve) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        };
        self.peers[i].handle = Some(server.spawn()?);
        Ok(())
    }

    /// Raise or drop peer `i`'s partition (no-op while killed).
    pub fn partition(&self, i: usize, on: bool) {
        if let Some(h) = self.peers[i].handle.as_ref() {
            h.partition(on);
        }
    }

    /// Counter snapshot for peer `i` (works while partitioned; `None`
    /// while killed).
    pub fn stats(&self, i: usize) -> Option<ServerStats> {
        self.peers[i].handle.as_ref().map(|h| h.stats())
    }

    /// Scenarios simulated so far, summed over live peers.
    pub fn total_simulated(&self) -> u64 {
        (0..self.peers.len())
            .filter_map(|i| self.stats(i))
            .map(|s| s.simulated)
            .sum()
    }

    /// The retry policy churn submissions use: generous attempts under a
    /// bounded deadline, so a mid-failover submission succeeds on retry
    /// instead of reporting a spurious failure.
    pub fn client_policy(&self) -> RetryPolicy {
        RetryPolicy {
            timeout_ms: self.config.rpc_timeout_ms.max(500),
            ..RetryPolicy::standard(5, 15_000)
        }
    }

    /// Submit one scenario through peer `i`, with retries.
    pub fn submit_via(&self, i: usize, spec: &ScenarioSpec) -> Result<ScenarioReply, ClientError> {
        let addr = self.peers[i].addr;
        call_with_retry(&addr, self.client_policy(), |c: &mut Client| c.submit(spec))
    }

    /// Fetch a raw store entry from peer `i` over the wire (v2 `Fetch`).
    pub fn fetch_from(&self, i: usize, key_hash: u64) -> Result<RawEntry, ClientError> {
        let addr = self.peers[i].addr;
        call_with_retry(&addr, self.client_policy(), |c: &mut Client| {
            c.fetch(key_hash)
        })
    }

    /// Restart every killed peer and drop every partition.
    pub fn restore_all(&mut self) -> std::io::Result<()> {
        for i in 0..self.peers.len() {
            self.restart(i)?;
            self.partition(i, false);
        }
        Ok(())
    }

    /// Gracefully stop every live peer.
    pub fn stop_all(&mut self) {
        for peer in &mut self.peers {
            if let Some(mut h) = peer.handle.take() {
                h.stop();
            }
        }
    }

    /// Wait until every peer holds every key in `expected`, byte-identical
    /// to the recorded value, and all store digests agree. Returns whether
    /// that happened before the timeout.
    pub fn await_convergence(&self, expected: &[(u64, Vec<u8>)], timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.converged_now(expected) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(self.config.sync_ms.max(20) / 2));
        }
    }

    /// One convergence probe: exact digest agreement plus per-key byte
    /// identity on every live peer.
    fn converged_now(&self, expected: &[(u64, Vec<u8>)]) -> bool {
        let mut digests = Vec::new();
        for i in 0..self.peers.len() {
            if !self.is_up(i) {
                return false;
            }
            let addr = self.peers[i].addr;
            let Ok(d) = call_with_retry(&addr, self.client_policy(), |c: &mut Client| {
                c.sync_digest()
            }) else {
                return false;
            };
            digests.push(d);
            for (hash, value) in expected {
                match self.fetch_from(i, *hash) {
                    Ok(Some((_key, v))) if &v == value => {}
                    _ => return false,
                }
            }
        }
        digests.windows(2).all(|w| w[0] == w[1])
    }

    /// Run the full churn experiment: submit `specs` round-robin through
    /// live peers while `plan` kills/restarts/partitions daemons, then
    /// restore everything, wait for anti-entropy, and do a warm pass.
    ///
    /// Fails fast (with `Err`) only if a spec cannot be simulated
    /// in-process — the expected bytes are the ground truth everything
    /// else is compared against. Invariant violations are reported in the
    /// returned [`ChurnReport`], not as errors.
    pub fn run_churn(
        &mut self,
        specs: &[ScenarioSpec],
        plan: &FaultPlan,
        settle: Duration,
    ) -> Result<ChurnReport, String> {
        let mut report = ChurnReport::default();
        // Ground truth: the deterministic in-process answer per spec.
        let mut expected = Vec::with_capacity(specs.len());
        for spec in specs {
            let outcome = run_scenario(spec, RunLimits::none(), None)
                .map_err(|e| format!("{}: {e}", spec.label()))?;
            let bytes = ScenarioReply::from_outcome(spec, &outcome).to_bytes();
            let hash = content_hash(&scenario_key_bytes(spec));
            expected.push((hash, bytes));
        }

        let mut schedule = build_schedule(plan, self.peers.len(), &mut report.log);
        schedule.sort_by_key(|&(at, _)| at);
        let tail = Duration::from_millis(300);
        let end = schedule.last().map_or(tail, |&(at, _)| at + tail);

        let start = Instant::now();
        let mut next_event = 0;
        let mut round = 0usize;
        while start.elapsed() < end || next_event < schedule.len() {
            let now = start.elapsed();
            while next_event < schedule.len() && schedule[next_event].0 <= now {
                let (at, action) = schedule[next_event];
                next_event += 1;
                self.apply(action, at, &mut report.log)?;
            }
            // One submission per tick, rotating over (spec, peer) pairs;
            // only live, unpartitioned peers are targeted — everyone else
            // is unreachable by design, not a failed request.
            let peer = round % self.peers.len();
            let spec = &specs[round % specs.len()];
            let exp = &expected[round % specs.len()];
            round += 1;
            if self.is_up(peer) && !self.is_partitioned(peer) {
                report.submissions += 1;
                match self.submit_via(peer, spec) {
                    Ok(reply) => {
                        report.served += 1;
                        if reply.to_bytes() != exp.1 {
                            report.mismatches.push(format!(
                                "{:?} via peer {peer}: reply differs from in-process run",
                                spec.label()
                            ));
                        }
                    }
                    Err(e) => report
                        .failures
                        .push(format!("{:?} via peer {peer}: {e}", spec.label())),
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        self.restore_all().map_err(|e| format!("restore: {e}"))?;
        report.log.push(format!(
            "{}ms all peers restored",
            start.elapsed().as_millis()
        ));
        report.converged = self.await_convergence(&expected, settle);
        report.log.push(format!(
            "{}ms convergence: {}",
            start.elapsed().as_millis(),
            if report.converged {
                "reached"
            } else {
                "TIMED OUT"
            }
        ));

        // Warm pass: every spec through every peer, nothing re-simulates.
        let simulated_before = self.total_simulated();
        let mut all_matched = true;
        for (si, spec) in specs.iter().enumerate() {
            for peer in 0..self.peers.len() {
                match self.submit_via(peer, spec) {
                    Ok(reply) if reply.to_bytes() == expected[si].1 => {}
                    Ok(_) => {
                        all_matched = false;
                        report.mismatches.push(format!(
                            "warm pass: {:?} via peer {peer} differs",
                            spec.label()
                        ));
                    }
                    Err(e) => {
                        all_matched = false;
                        report.failures.push(format!(
                            "warm pass: {:?} via peer {peer}: {e}",
                            spec.label()
                        ));
                    }
                }
            }
        }
        report.resimulated_when_warm = self.total_simulated().saturating_sub(simulated_before);
        report.warm_everywhere = all_matched;
        report.log.push(format!(
            "{}ms warm pass: {} submissions, {} re-simulated",
            start.elapsed().as_millis(),
            specs.len() * self.peers.len(),
            report.resimulated_when_warm,
        ));
        Ok(report)
    }

    /// Apply one chaos action, logging what happened.
    fn apply(&mut self, action: Action, at: Duration, log: &mut Vec<String>) -> Result<(), String> {
        let ms = at.as_millis();
        match action {
            Action::Kill(i) => {
                self.kill(i);
                log.push(format!("{ms}ms kill peer {i} ({})", self.peers[i].addr));
            }
            Action::Restart(i) => {
                self.restart(i)
                    .map_err(|e| format!("restart peer {i}: {e}"))?;
                log.push(format!("{ms}ms restart peer {i} ({})", self.peers[i].addr));
            }
            Action::Partition(i, on) => {
                self.partition(i, on);
                log.push(format!(
                    "{ms}ms {} peer {i} ({})",
                    if on { "partition" } else { "heal" },
                    self.peers[i].addr
                ));
            }
        }
        Ok(())
    }
}

/// Shared per-peer daemon configuration.
fn peer_config(
    config: &ClusterConfig,
    store_dir: &Path,
    advertise: String,
    seeds: Vec<String>,
) -> ServeConfig {
    ServeConfig {
        store_dir: Some(store_dir.to_path_buf()),
        capacity: config.capacity,
        limits: RunLimits::none(),
        trace_capacity: 0,
        idle_timeout_ms: 10_000,
        store_capacity_bytes: 0,
        workers: 0,
        fleet: Some(FleetConfig {
            advertise,
            seeds,
            heartbeat_ms: config.heartbeat_ms,
            sync_ms: config.sync_ms,
            suspect_after: config.suspect_after,
            rpc_timeout_ms: config.rpc_timeout_ms,
            rpc_retries: 1,
        }),
    }
}

/// Reinterpret a simulator [`FaultPlan`] as a fleet chaos schedule. Ranks
/// index peers modulo the cluster size; times are wall-clock nanoseconds
/// from churn start. `Straggler`/`Duplicate` events have no fleet analogue
/// and are logged as skipped.
fn build_schedule(
    plan: &FaultPlan,
    peers: usize,
    log: &mut Vec<String>,
) -> Vec<(Duration, Action)> {
    let mut schedule = Vec::new();
    for event in plan.events() {
        let peer = event.rank % peers.max(1);
        match event.kind {
            FaultKind::Crash { at } => {
                schedule.push((Duration::from_nanos(at), Action::Kill(peer)));
            }
            FaultKind::Delay { at, duration } => {
                schedule.push((Duration::from_nanos(at), Action::Kill(peer)));
                schedule.push((Duration::from_nanos(at + duration), Action::Restart(peer)));
            }
            FaultKind::Drop { from, until, .. } => {
                schedule.push((Duration::from_nanos(from), Action::Partition(peer, true)));
                schedule.push((Duration::from_nanos(until), Action::Partition(peer, false)));
            }
            _ => log.push(format!(
                "skipping fault with no fleet analogue on rank {}",
                event.rank
            )),
        }
    }
    schedule
}

impl Drop for ClusterHarness {
    fn drop(&mut self) {
        for peer in &mut self.peers {
            drop(peer.handle.take());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_engine::time::MS;

    #[test]
    fn fault_plans_map_onto_cluster_actions() {
        let plan = FaultPlan::new()
            .with_crash(0, 10 * MS)
            .with_delay(1, 20 * MS, 5 * MS)
            .with_drop_window(2, 30 * MS, 40 * MS, 1_000_000)
            .with_straggler(1, 1500);
        let mut log = Vec::new();
        let mut schedule = build_schedule(&plan, 3, &mut log);
        schedule.sort_by_key(|&(at, _)| at);
        assert_eq!(
            schedule.len(),
            5,
            "crash + kill/restart + 2 partition edges"
        );
        assert_eq!(log.len(), 1, "straggler is skipped, loudly");
        assert!(matches!(schedule[0], (_, Action::Kill(0))));
        assert!(matches!(schedule[1], (_, Action::Kill(1))));
        assert!(matches!(schedule[2], (_, Action::Restart(1))));
        assert!(matches!(schedule[3], (_, Action::Partition(2, true))));
        assert!(matches!(schedule[4], (_, Action::Partition(2, false))));
        // Ranks wrap around small clusters instead of panicking.
        let mut wrapped = Vec::new();
        let s = build_schedule(&plan.clone().with_crash(7, MS), 2, &mut wrapped);
        assert!(s.iter().any(|&(_, a)| matches!(a, Action::Kill(1))));
    }
}

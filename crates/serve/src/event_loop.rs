//! The readiness-based serving core: one event-loop thread drives every
//! connection through a per-connection state machine, and a small worker
//! pool runs the simulation-bearing requests.
//!
//! ## Why not thread-per-connection
//!
//! The previous accept loop spawned a kernel thread per connection, so at
//! fleet scale every idle client cost scheduler state — precisely the
//! kernel interference the source paper measures. Here the loop holds
//! *all* connections on one thread behind a level-triggered readiness
//! poller ([`crate::sys::Poller`]: epoll on Linux, `poll(2)` elsewhere);
//! 10k idle connections cost file descriptors and a few hundred bytes of
//! buffer each, not 10k schedulable threads.
//!
//! ## Division of labor
//!
//! The loop thread does everything that is cheap and non-blocking:
//! accept, sniffing (binary frames vs. HTTP), incremental frame parsing,
//! in-memory cache hits, `Stats`/`Trace`/`Gossip`/`Shutdown`, and the
//! `/metrics` exposition — a scrape never waits on anything. Requests
//! that may block (disk lookups, simulations, sweeps, fleet forwards,
//! anti-entropy scans) are enqueued to the worker pool; workers call the
//! same coalescing scheduler as before ([`Shared::submit`] /
//! [`Shared::sweep`], condvar-join machinery intact) and push encoded
//! reply frames to a completion queue, waking the loop through a
//! self-pipe.
//!
//! ## Ordering contract
//!
//! Replies to non-batch requests are strictly FIFO per connection: each
//! request takes a sequence number at decode time and completed replies
//! are held until every earlier reply has been emitted. `SubmitBatch`
//! replies are exempt — they complete out of order and carry the
//! client-chosen batch id instead, which is what makes pipelining pay.

#![cfg(unix)]

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ghost_core::scenario::ScenarioSpec;

use crate::server::{lock, Shared};
use crate::sys::{self, Interest, Poller};
use crate::wire::{
    decode_request, encode_response, write_frame_v, Request, Response, WireError, MAGIC,
    MAX_PAYLOAD, MAX_VERSION, SYNC_BUCKETS, VERSION,
};

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Per-connection cap on decoded-but-unanswered requests; past it the
/// loop stops reading from that connection until completions drain.
const MAX_CONN_INFLIGHT: u32 = 1024;
/// Cap on buffered HTTP header bytes.
const HTTP_HEADER_LIMIT: usize = 8 * 1024;
/// Base poll timeout: how fast the loop notices flag-only changes
/// (shutdown/kill/partition) with no socket activity.
const POLL_TIMEOUT_MS: i32 = 25;

// ---------------------------------------------------------------------------
// Worker pool

/// A unit of work a connection handed to the pool.
enum Work {
    Submit {
        spec: Box<ScenarioSpec>,
        allow_forward: bool,
    },
    Sweep {
        specs: Vec<ScenarioSpec>,
    },
    Batch {
        id: u64,
        specs: Vec<ScenarioSpec>,
    },
    SyncDigest,
    SyncList {
        bucket: u8,
    },
    Fetch {
        key_hash: u64,
    },
}

struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    ordered: bool,
    version: u16,
    track: u64,
    t0: u64,
    work: Work,
}

/// A completed job: the fully framed reply bytes, ready to route back to
/// the connection that asked (generation-checked, so a reply for a dead
/// connection is dropped instead of corrupting a reused slot).
struct Done {
    conn: usize,
    gen: u64,
    seq: u64,
    ordered: bool,
    bytes: Vec<u8>,
}

struct QueueState {
    q: VecDeque<Job>,
    closed: bool,
}

struct PoolInner {
    jobs: Mutex<QueueState>,
    cv: Condvar,
    done: Mutex<Vec<Done>>,
    /// Jobs enqueued or running (completion not yet pushed).
    pending: AtomicI64,
    /// Write end of the loop's self-pipe.
    wake: UnixStream,
    shared: Arc<Shared>,
}

struct Pool {
    inner: Arc<PoolInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn start(shared: Arc<Shared>, wake: UnixStream) -> Self {
        let workers = match shared.config.workers {
            0 => std::thread::available_parallelism().map_or(8, |n| n.get().max(8)),
            n => n,
        };
        let inner = Arc::new(PoolInner {
            jobs: Mutex::new(QueueState {
                q: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            done: Mutex::new(Vec::new()),
            pending: AtomicI64::new(0),
            wake,
            shared,
        });
        let threads = (0..workers)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, threads }
    }

    fn enqueue(&self, job: Job) {
        self.inner.pending.fetch_add(1, Ordering::Relaxed);
        {
            let mut g = lock(&self.inner.jobs);
            g.q.push_back(job);
        }
        self.inner.cv.notify_one();
    }

    fn pending(&self) -> i64 {
        self.inner.pending.load(Ordering::Relaxed)
    }

    fn take_done(&self) -> Vec<Done> {
        std::mem::take(&mut *lock(&self.inner.done))
    }

    fn done_empty(&self) -> bool {
        lock(&self.inner.done).is_empty()
    }

    fn close(&self) {
        lock(&self.inner.jobs).closed = true;
        self.inner.cv.notify_all();
    }

    fn join(&mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut g = lock(&inner.jobs);
            loop {
                if let Some(j) = g.q.pop_front() {
                    break j;
                }
                if g.closed {
                    return;
                }
                g = inner.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        };
        let shared = &inner.shared;
        let resp = perform(shared, job.work, job.track);
        // Service time closes before the reply is encoded, mirroring the
        // pre-event-loop semantics (a Stats reply never times itself).
        shared
            .pulse
            .request_ns
            .record(shared.now_ns().saturating_sub(job.t0));
        let t_enc = shared.now_ns();
        let bytes = frame_bytes(job.version, &resp);
        shared.stage(job.track, "encode", t_enc, &shared.pulse.encode_ns);
        lock(&inner.done).push(Done {
            conn: job.conn,
            gen: job.gen,
            seq: job.seq,
            ordered: job.ordered,
            bytes,
        });
        inner.pending.fetch_sub(1, Ordering::Relaxed);
        // Ignore a full pipe: a wake byte is already queued.
        let _ = (&inner.wake).write(&[1]);
    }
}

/// Run one unit of blocking-capable work against the shared scheduler.
fn perform(shared: &Shared, work: Work, track: u64) -> Response {
    match work {
        Work::Submit {
            spec,
            allow_forward,
        } => shared.submit(&spec, track, allow_forward),
        Work::Sweep { specs } => shared.sweep(&specs, track),
        Work::Batch { id, specs } => match shared.sweep(&specs, track) {
            Response::Sweep(slots) => Response::Batch {
                id,
                slots: Ok(slots),
            },
            Response::Busy { active, capacity } => Response::Batch {
                id,
                slots: Err((active, capacity)),
            },
            other => other,
        },
        Work::SyncDigest => {
            let buckets = match &shared.store {
                Some(store) => store.digest(),
                None => vec![(0, 0); SYNC_BUCKETS],
            };
            Response::SyncDigest { buckets }
        }
        Work::SyncList { bucket } => {
            if usize::from(bucket) >= SYNC_BUCKETS {
                Response::Error(format!("bucket {bucket} out of range"))
            } else {
                let hashes = match &shared.store {
                    Some(store) => store.hashes_in_bucket(usize::from(bucket)),
                    None => Vec::new(),
                };
                Response::SyncList { hashes }
            }
        }
        Work::Fetch { key_hash } => {
            Response::Entry(shared.store.as_ref().and_then(|s| s.get_raw(key_hash)))
        }
    }
}

/// Encode `resp` into a complete frame. A reply that exceeds the payload
/// cap degrades to a typed error frame instead of tearing the stream.
fn frame_bytes(version: u16, resp: &Response) -> Vec<u8> {
    let payload = encode_response(resp);
    let mut buf = Vec::with_capacity(payload.len() + 10);
    if write_frame_v(&mut buf, version, &payload).is_ok() {
        return buf;
    }
    let fallback = encode_response(&Response::Error("reply exceeds frame size cap".into()));
    let mut buf = Vec::new();
    let _ = write_frame_v(&mut buf, version, &fallback);
    buf
}

// ---------------------------------------------------------------------------
// Per-connection state machine

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Waiting for the first bytes to tell frames (`"GS…"`) from HTTP
    /// (`"GE…"` of `GET`).
    Sniff,
    Frames,
    Http,
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    kind: Kind,
    /// Unparsed inbound bytes.
    rbuf: Vec<u8>,
    /// Outbound bytes; `opos` marks how much has been written.
    out: Vec<u8>,
    opos: usize,
    /// Next sequence number to assign to an ordered request.
    next_seq: u64,
    /// Next ordered sequence number to emit.
    next_send: u64,
    /// Completed ordered replies waiting for an earlier reply to finish.
    held: BTreeMap<u64, Vec<u8>>,
    /// Requests decoded but not yet emitted into `out`.
    inflight: u32,
    last_active: Instant,
    /// Flush what is queued, then close (shutdown ack, HTTP, desync).
    closing: bool,
    /// Peer half-closed its write side; serve what's pending, then close.
    read_closed: bool,
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Self {
            stream,
            gen,
            kind: Kind::Sniff,
            rbuf: Vec::new(),
            out: Vec::new(),
            opos: 0,
            next_seq: 0,
            next_send: 0,
            held: BTreeMap::new(),
            inflight: 0,
            last_active: Instant::now(),
            closing: false,
            read_closed: false,
            interest: Interest {
                read: true,
                write: false,
            },
        }
    }

    fn out_drained(&self) -> bool {
        self.opos == self.out.len()
    }

    /// Emit an ordered reply: held until every earlier sequence number has
    /// been emitted, then flushed into `out` in order.
    fn deliver_ordered(&mut self, seq: u64, bytes: Vec<u8>) {
        self.held.insert(seq, bytes);
        while let Some(bytes) = self.held.remove(&self.next_send) {
            self.out.extend_from_slice(&bytes);
            self.next_send += 1;
            self.inflight = self.inflight.saturating_sub(1);
        }
    }

    /// Emit an out-of-order (batch) reply immediately.
    fn deliver_unordered(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
        self.inflight = self.inflight.saturating_sub(1);
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            read: !self.closing && !self.read_closed && self.inflight < MAX_CONN_INFLIGHT,
            write: !self.out_drained(),
        }
    }
}

/// Why a connection is being closed (metrics only).
enum Close {
    Normal,
    IdleReaped,
}

// ---------------------------------------------------------------------------
// The loop

struct Loop<'a> {
    shared: &'a Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    gen: u64,
    pool: Pool,
    wake_rx: UnixStream,
    accept_registered: bool,
    accept_resume: Option<Instant>,
    accept_backoff_ms: u64,
}

/// Serve on `listener` until shutdown (drain first) or abort (immediate).
pub(crate) fn run(listener: TcpListener, shared: &Arc<Shared>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    shared.pulse.set_poll_backend(poller.backend_name());
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    poller.register(
        listener.as_raw_fd(),
        TOKEN_LISTENER,
        Interest {
            read: true,
            write: false,
        },
    )?;
    poller.register(
        wake_rx.as_raw_fd(),
        TOKEN_WAKE,
        Interest {
            read: true,
            write: false,
        },
    )?;
    let pool = Pool::start(shared.clone(), wake_tx);
    let mut lp = Loop {
        shared,
        poller,
        listener,
        conns: Vec::new(),
        free: Vec::new(),
        gen: 0,
        pool,
        wake_rx,
        accept_registered: true,
        accept_resume: None,
        accept_backoff_ms: 10,
    };
    let result = lp.serve();
    // Wake parked workers; on graceful shutdown every job has already
    // completed so the join is immediate. A hard kill skips the join —
    // workers exit on their own once any in-progress simulation returns.
    lp.pool.close();
    if !lp.shared.abort.load(Ordering::Relaxed) {
        lp.pool.join();
    }
    result
}

impl Loop<'_> {
    fn serve(&mut self) -> std::io::Result<()> {
        let idle_ms = self.shared.config.idle_timeout_ms;
        let sweep_every = Duration::from_millis((idle_ms / 4).clamp(5, 1_000));
        let mut last_sweep = Instant::now();
        let mut events: Vec<sys::PollEvent> = Vec::new();
        loop {
            if self.shared.abort.load(Ordering::Relaxed) {
                return Ok(());
            }
            let stopping = self.shared.shutdown.load(Ordering::Relaxed);
            if stopping {
                if self.accept_registered {
                    let _ = self.poller.deregister(self.listener.as_raw_fd());
                    self.accept_registered = false;
                }
                if self.drained() {
                    return Ok(());
                }
            } else if let Some(at) = self.accept_resume {
                // fd-exhaustion backoff elapsed: start accepting again.
                if Instant::now() >= at {
                    self.accept_resume = None;
                    if !self.accept_registered {
                        self.poller.register(
                            self.listener.as_raw_fd(),
                            TOKEN_LISTENER,
                            Interest {
                                read: true,
                                write: false,
                            },
                        )?;
                        self.accept_registered = true;
                    }
                }
            }

            events.clear();
            events.extend_from_slice(self.poller.wait(POLL_TIMEOUT_MS)?);
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_burst(stopping)?,
                    TOKEN_WAKE => self.drain_wake(),
                    token => {
                        let idx = token as usize;
                        if ev.writable {
                            self.flush(idx);
                        }
                        if ev.readable {
                            self.read(idx);
                        }
                    }
                }
            }

            self.route_completions();

            if idle_ms > 0 && last_sweep.elapsed() >= sweep_every {
                last_sweep = Instant::now();
                self.reap_idle(Duration::from_millis(idle_ms));
            }
        }
    }

    /// Graceful-drain condition: no queued or running jobs, no undelivered
    /// completions, and every connection's reply bytes flushed.
    fn drained(&self) -> bool {
        self.pool.pending() == 0
            && self.pool.done_empty()
            && self
                .conns
                .iter()
                .flatten()
                .all(|c| c.inflight == 0 && c.out_drained())
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_burst(&mut self, stopping: bool) -> std::io::Result<()> {
        loop {
            if stopping || self.accept_resume.is_some() {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff_ms = 10;
                    if self.shared.partitioned() {
                        // Chaos partition: reachable at TCP, silent above
                        // it (connection accepted, then dropped).
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.insert_conn(stream)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if sys::is_fd_exhaustion(&e) => {
                    // EMFILE/ENFILE: count, unhook the listener, and back
                    // off exponentially instead of spinning on accept —
                    // the pending connection stays in the backlog and is
                    // picked up when descriptors free up.
                    self.shared.pulse.accept_errors.inc();
                    self.accept_resume =
                        Some(Instant::now() + Duration::from_millis(self.accept_backoff_ms));
                    self.accept_backoff_ms = (self.accept_backoff_ms * 2).min(1_000);
                    if self.accept_registered {
                        let _ = self.poller.deregister(self.listener.as_raw_fd());
                        self.accept_registered = false;
                    }
                    return Ok(());
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    // The peer gave up between SYN and accept: not ours.
                    self.shared.pulse.accept_errors.inc();
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream) -> std::io::Result<()> {
        self.gen += 1;
        let conn = Conn::new(stream, self.gen);
        let fd = conn.stream.as_raw_fd();
        let interest = conn.interest;
        let idx = match self.free.pop() {
            Some(i) => {
                if let Some(slot) = self.conns.get_mut(i) {
                    *slot = Some(conn);
                }
                i
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        if self.poller.register(fd, idx as u64, interest).is_err() {
            if let Some(slot) = self.conns.get_mut(idx) {
                *slot = None;
            }
            self.free.push(idx);
            return Ok(());
        }
        self.shared.pulse.open_conns.add(1);
        Ok(())
    }

    fn close_conn(&mut self, idx: usize, why: Close) {
        let Some(slot) = self.conns.get_mut(idx) else {
            return;
        };
        let Some(c) = slot.take() else { return };
        // Deregister before the stream drops and the fd closes.
        let _ = self.poller.deregister(c.stream.as_raw_fd());
        self.free.push(idx);
        self.shared.pulse.open_conns.add(-1);
        if matches!(why, Close::IdleReaped) {
            self.shared.pulse.idle_reaped.inc();
        }
    }

    fn reap_idle(&mut self, idle: Duration) {
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let c = slot.as_ref()?;
                (c.inflight == 0 && c.last_active.elapsed() >= idle).then_some(i)
            })
            .collect();
        for idx in stale {
            self.close_conn(idx, Close::IdleReaped);
        }
    }

    /// Read everything available, then run the state machine and flush.
    fn read(&mut self, idx: usize) {
        let mut dead = false;
        {
            let Some(Some(c)) = self.conns.get_mut(idx) else {
                return;
            };
            let mut buf = [0u8; 16 * 1024];
            loop {
                match c.stream.read(&mut buf) {
                    Ok(0) => {
                        c.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        c.rbuf.extend_from_slice(&buf[..n]);
                        c.last_active = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(idx, Close::Normal);
            return;
        }
        self.service(idx);
    }

    /// Run the connection's state machine over whatever is buffered, then
    /// flush and re-arm interest. Safe to call any time.
    fn service(&mut self, idx: usize) {
        let keep = {
            let Self {
                conns,
                shared,
                pool,
                ..
            } = self;
            let Some(Some(c)) = conns.get_mut(idx) else {
                return;
            };
            process(c, idx, shared, pool)
        };
        if !keep {
            self.close_conn(idx, Close::Normal);
            return;
        }
        self.flush(idx);
    }

    /// Write as much of `out` as the socket accepts; close on completion
    /// when the connection is finished, and keep interest in sync.
    fn flush(&mut self, idx: usize) {
        let mut dead = false;
        {
            let Self { conns, poller, .. } = self;
            let Some(Some(c)) = conns.get_mut(idx) else {
                return;
            };
            loop {
                if c.out_drained() {
                    break;
                }
                match c.stream.write(&c.out[c.opos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        c.opos += n;
                        c.last_active = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                if c.out_drained() {
                    c.out.clear();
                    c.opos = 0;
                    if c.inflight == 0 && (c.closing || c.read_closed) {
                        dead = true;
                    }
                } else if c.opos > 64 * 1024 {
                    // Reclaim the already-written prefix of a large reply.
                    c.out.drain(..c.opos);
                    c.opos = 0;
                }
            }
            if !dead {
                let want = c.desired_interest();
                if want != c.interest
                    && poller
                        .modify(c.stream.as_raw_fd(), idx as u64, want)
                        .is_ok()
                {
                    c.interest = want;
                }
            }
        }
        if dead {
            self.close_conn(idx, Close::Normal);
        }
    }

    /// Route completed worker jobs back to their connections.
    fn route_completions(&mut self) {
        let done = self.pool.take_done();
        if done.is_empty() {
            return;
        }
        let mut touched: Vec<usize> = Vec::with_capacity(done.len());
        for d in done {
            let Some(Some(c)) = self.conns.get_mut(d.conn) else {
                continue;
            };
            if c.gen != d.gen {
                continue; // reply for a connection that died; slot reused
            }
            if d.ordered {
                c.deliver_ordered(d.seq, d.bytes);
            } else {
                c.deliver_unordered(&d.bytes);
            }
            if !touched.contains(&d.conn) {
                touched.push(d.conn);
            }
        }
        for idx in touched {
            // A paused connection (inflight cap) may hold complete frames
            // in rbuf that nothing else will parse: service, not just
            // flush.
            self.service(idx);
        }
    }
}

// ---------------------------------------------------------------------------
// Frame/HTTP processing (pure functions over one connection)

/// Parse one frame header from `buf`: `Ok(Some((version, payload_start,
/// total_len)))` when a whole frame is buffered, `Ok(None)` when more
/// bytes are needed, `Err` on a header-level defect (desync).
fn parse_frame(buf: &[u8]) -> Result<Option<(u16, usize, usize)>, WireError> {
    if buf.len() < 10 {
        return Ok(None);
    }
    let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if !(VERSION..=MAX_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let total = 10 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((version, 10, total)))
}

/// Advance the state machine over the connection's read buffer. Returns
/// `false` when the connection must be closed now (silently).
fn process(c: &mut Conn, idx: usize, shared: &Arc<Shared>, pool: &Pool) -> bool {
    loop {
        match c.kind {
            Kind::Sniff => {
                if c.rbuf.is_empty() {
                    return true;
                }
                if c.rbuf[0] != b'G' {
                    // Not ours; the frame parser will answer BadMagic.
                    c.kind = Kind::Frames;
                    continue;
                }
                if c.rbuf.len() < 2 {
                    return true;
                }
                c.kind = if c.rbuf[1] == b'E' {
                    Kind::Http
                } else {
                    Kind::Frames
                };
            }
            Kind::Http => {
                let Some(head_end) = c.rbuf.windows(4).position(|w| w == b"\r\n\r\n") else {
                    // Cap runaway headers.
                    return c.rbuf.len() <= HTTP_HEADER_LIMIT;
                };
                let head = String::from_utf8_lossy(&c.rbuf[..head_end]).into_owned();
                c.rbuf.clear();
                let body = http_respond(&head, shared);
                c.out.extend_from_slice(&body);
                c.closing = true;
                return true;
            }
            Kind::Frames => {
                if c.closing || c.inflight >= MAX_CONN_INFLIGHT {
                    return true;
                }
                match parse_frame(&c.rbuf) {
                    Ok(None) => return true,
                    Ok(Some((version, start, total))) => {
                        let payload = c.rbuf[start..total].to_vec();
                        c.rbuf.drain(..total);
                        if !handle_frame(c, idx, version, &payload, shared, pool) {
                            return false;
                        }
                    }
                    Err(e) => {
                        // Header-level: the stream is desynchronized.
                        // Best-effort typed error after any pending
                        // replies, then close.
                        shared.pulse.decode_errors.inc();
                        let seq = c.next_seq;
                        c.next_seq += 1;
                        c.inflight += 1;
                        c.deliver_ordered(
                            seq,
                            frame_bytes(VERSION, &Response::Error(e.to_string())),
                        );
                        c.rbuf.clear();
                        c.closing = true;
                        return true;
                    }
                }
            }
        }
    }
}

/// Decode and dispatch one frame. Returns `false` to close silently
/// (chaos partition/abort).
fn handle_frame(
    c: &mut Conn,
    idx: usize,
    version: u16,
    payload: &[u8],
    shared: &Arc<Shared>,
    pool: &Pool,
) -> bool {
    if shared.partitioned() || shared.abort.load(Ordering::Relaxed) {
        // Chaos: a partitioned or killed peer goes silent mid-stream.
        return false;
    }
    // The request sequence number doubles as the trace track.
    let track = shared.pulse.requests.inc();
    let t0 = shared.now_ns();
    let decoded = decode_request(payload);
    shared.stage(track, "decode", t0, &shared.pulse.decode_ns);

    let seq = c.next_seq;
    c.next_seq += 1;
    c.inflight += 1;

    let capacity = shared.config.capacity as i64;
    let inline = |c: &mut Conn, resp: Response| {
        shared
            .pulse
            .request_ns
            .record(shared.now_ns().saturating_sub(t0));
        let t_enc = shared.now_ns();
        let bytes = frame_bytes(version, &resp);
        shared.stage(track, "encode", t_enc, &shared.pulse.encode_ns);
        c.deliver_ordered(seq, bytes);
    };

    match decoded {
        Err(e) => {
            // Payload-level: typed error, connection survives.
            shared.pulse.decode_errors.inc();
            inline(c, Response::Error(format!("bad request: {e}")));
        }
        // Version gate: a v2-only request smuggled into a too-old frame
        // is refused before any machinery can act on it.
        Ok(req) if req.required_version() > version => {
            shared.pulse.decode_errors.inc();
            inline(
                c,
                Response::Error(format!(
                    "request requires protocol v{}, frame is v{version}",
                    req.required_version()
                )),
            );
        }
        Ok(Request::Submit(spec)) => {
            if let Some(resp) = shared.fast_submit(&spec, track) {
                inline(c, resp);
            } else if pool.pending() >= capacity {
                shared.pulse.scenarios.inc();
                shared.pulse.busy_rejections.inc();
                let active = pool.pending().max(0) as u32;
                inline(
                    c,
                    Response::Busy {
                        active,
                        capacity: capacity.max(0) as u32,
                    },
                );
            } else {
                pool.enqueue(Job {
                    conn: idx,
                    gen: c.gen,
                    seq,
                    ordered: true,
                    version,
                    track,
                    t0,
                    work: Work::Submit {
                        spec: Box::new(spec),
                        allow_forward: true,
                    },
                });
            }
        }
        // The sender already routed this to us: serve locally, never
        // re-forward (loop freedom).
        Ok(Request::Forward(spec)) => {
            if let Some(resp) = shared.fast_submit(&spec, track) {
                inline(c, resp);
            } else if pool.pending() >= capacity {
                shared.pulse.scenarios.inc();
                shared.pulse.busy_rejections.inc();
                let active = pool.pending().max(0) as u32;
                inline(
                    c,
                    Response::Busy {
                        active,
                        capacity: capacity.max(0) as u32,
                    },
                );
            } else {
                pool.enqueue(Job {
                    conn: idx,
                    gen: c.gen,
                    seq,
                    ordered: true,
                    version,
                    track,
                    t0,
                    work: Work::Submit {
                        spec: Box::new(spec),
                        allow_forward: false,
                    },
                });
            }
        }
        Ok(Request::Sweep(specs)) => {
            if pool.pending() >= capacity {
                shared.pulse.scenarios.add(specs.len() as u64);
                shared.pulse.busy_rejections.inc();
                let active = pool.pending().max(0) as u32;
                inline(
                    c,
                    Response::Busy {
                        active,
                        capacity: capacity.max(0) as u32,
                    },
                );
            } else {
                pool.enqueue(Job {
                    conn: idx,
                    gen: c.gen,
                    seq,
                    ordered: true,
                    version,
                    track,
                    t0,
                    work: Work::Sweep { specs },
                });
            }
        }
        Ok(Request::SubmitBatch { id, specs }) => {
            // Batch replies are unordered: release the sequence number so
            // the ordered stream never waits on a batch.
            c.next_seq -= 1;
            shared.pulse.batches.inc();
            if let Some(resp) = shared.fast_batch(id, &specs, track) {
                // Every cell was a warm memory hit: answer inline, exactly
                // like `fast_submit`, without a worker-pool round-trip.
                shared
                    .pulse
                    .request_ns
                    .record(shared.now_ns().saturating_sub(t0));
                let bytes = frame_bytes(version, &resp);
                c.deliver_unordered(&bytes);
            } else if pool.pending() >= capacity {
                shared.pulse.scenarios.add(specs.len() as u64);
                shared.pulse.busy_rejections.inc();
                let active = pool.pending().max(0) as u32;
                shared
                    .pulse
                    .request_ns
                    .record(shared.now_ns().saturating_sub(t0));
                let bytes = frame_bytes(
                    version,
                    &Response::Batch {
                        id,
                        slots: Err((active, capacity.max(0) as u32)),
                    },
                );
                c.deliver_unordered(&bytes);
            } else {
                pool.enqueue(Job {
                    conn: idx,
                    gen: c.gen,
                    seq: 0,
                    ordered: false,
                    version,
                    track,
                    t0,
                    work: Work::Batch { id, specs },
                });
            }
        }
        Ok(Request::Stats) => {
            let stats = shared.stats();
            inline(c, Response::Stats(Box::new(stats)));
        }
        Ok(Request::Trace) => {
            let spans = shared.trace.snapshot();
            inline(
                c,
                Response::Trace(ghost_obs::chrome::stage_trace_json(&spans)),
            );
        }
        Ok(Request::Shutdown) => {
            shared.shutdown.store(true, Ordering::Relaxed);
            inline(c, Response::ShutdownAck);
            c.closing = true;
        }
        Ok(Request::Gossip { from, peers }) => {
            let resp = shared.gossip(&from, &peers);
            inline(c, resp);
        }
        Ok(Request::SyncDigest) => pool.enqueue(Job {
            conn: idx,
            gen: c.gen,
            seq,
            ordered: true,
            version,
            track,
            t0,
            work: Work::SyncDigest,
        }),
        Ok(Request::SyncList { bucket }) => pool.enqueue(Job {
            conn: idx,
            gen: c.gen,
            seq,
            ordered: true,
            version,
            track,
            t0,
            work: Work::SyncList { bucket },
        }),
        Ok(Request::Fetch { key_hash }) => pool.enqueue(Job {
            conn: idx,
            gen: c.gen,
            seq,
            ordered: true,
            version,
            track,
            t0,
            work: Work::Fetch { key_hash },
        }),
    }
    true
}

/// Answer one parsed HTTP request head: `GET /metrics` gets the pulse
/// exposition, anything else a 404. Runs entirely on the loop thread —
/// this is what makes a scrape cost microseconds instead of an accept-
/// loop poll interval.
fn http_respond(head: &str, shared: &Shared) -> Vec<u8> {
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        shared.pulse.scrapes.inc();
        ("200 OK", shared.metrics_text())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let mut out = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

//! # ghost-serve — a campaign-serving daemon with a persistent result store
//!
//! Parameter sweeps over a deterministic simulator re-run the same
//! scenarios constantly: the same baseline for every noise intensity, the
//! same grid cell across replications and CLI invocations. `ghost-serve`
//! exploits that determinism with a small std-only daemon that exposes
//! the campaign engine over TCP and remembers every answer:
//!
//! * [`wire`] — versioned length-prefixed frames and a strict, canonical
//!   binary codec. Decoding is total: arbitrary bytes produce a typed
//!   [`wire::WireError`], never a panic, and a malformed payload leaves
//!   the connection usable.
//! * [`store`] — a content-addressed on-disk result cache keyed by the
//!   canonical scenario encoding. Atomic tmp+rename writes; truncation,
//!   corruption, and filename collisions are verified on read and treated
//!   as misses. Optionally size-bounded: LRU-by-access eviction keeps the
//!   cache under a byte budget, and startup compaction sweeps orphaned
//!   tmp files from crashed writers. A warm restart answers repeats
//!   without re-simulating — byte-identically, since the simulator is
//!   seed-deterministic.
//! * [`server`] — the daemon: a readiness-based event loop (epoll on
//!   Linux, `poll(2)` elsewhere) holding thousands of connections on one
//!   thread, per-connection state machines that pipeline many in-flight
//!   requests, a worker pool for simulation with a coalescing scheduler
//!   (identical in-flight scenarios simulate once), batch sweeps on the
//!   campaign engine's work-stealing pool, bounded admission control with
//!   a typed `Busy` response, graceful drain on shutdown, and `ghost-obs`
//!   counters plus latency histograms behind a `Stats` request.
//! * [`client`] — the blocking client the CLI (`ghostsim serve` /
//!   `ghostsim submit` / `--server`) is built on, plus
//!   [`client::scrape_metrics`] for the HTTP side and
//!   [`client::RetryPolicy`]/[`client::call_with_retry`] for transient-
//!   failure handling (backoff + jitter under a deadline).
//! * [`fleet`] — ghost-fleet: rendezvous-hash key ownership across N
//!   daemons, peer registry, and heartbeat-driven suspicion. Requests for
//!   keys owned elsewhere are forwarded (v2 frames, version-gated) and
//!   the reply is cached read-through; an unreachable owner degrades to
//!   local simulation instead of an error.
//! * [`gossip`] — the background loop: membership gossip and pull-only
//!   anti-entropy store sync (byte-identity makes digests exact).
//!
//! The same listener also answers plain HTTP: `GET /metrics` returns a
//! Prometheus-style text exposition (request/hit/coalesce counters, queue
//! depth, per-stage latency quantiles), and a `Trace` request dumps the
//! server's recent per-request stage spans as Chrome trace-event JSON.
//!
//! ```no_run
//! use ghost_serve::server::{ServeConfig, Server};
//! use ghost_serve::client::Client;
//! use ghost_core::scenario::{InjectionSpec, ScenarioSpec, WorkloadSpec};
//! use ghost_core::ExperimentSpec;
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let reply = client.submit(&ScenarioSpec {
//!     workload: WorkloadSpec::Sage { steps: 5 },
//!     machine: ExperimentSpec::torus(64, 1),
//!     injection: InjectionSpec::uncoordinated(10.0, 0.025),
//! })?;
//! println!("{}: {:+.2}%", reply.label, reply.metrics().slowdown_pct());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod chaos;
pub mod client;
pub(crate) mod event_loop;
pub mod fleet;
pub(crate) mod gossip;
pub(crate) mod pulse;
pub mod server;
pub mod store;
pub(crate) mod sys;
pub mod wire;

pub use chaos::{ChurnReport, ClusterConfig, ClusterHarness};
pub use client::{call_with_retry, scrape_metrics, Client, ClientError, RetryPolicy};
pub use fleet::{Fleet, FleetConfig};
pub use server::{ServeConfig, Server, ServerHandle};
pub use store::ResultStore;
pub use wire::{BatchSlots, Request, Response, ScenarioReply, ServerStats, WireError};

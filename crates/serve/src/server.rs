//! The ghost-serve daemon: the request scheduler behind the event loop —
//! coalescing, admission control, the two-level (memory + disk) result
//! cache, and the ghost-pulse telemetry layer. Connection I/O lives in
//! [`crate::event_loop`]; this module owns what requests *mean*.
//!
//! ## Request lifecycle
//!
//! A `Submit` is answered from, in order: the in-memory reply cache, the
//! persistent [`ResultStore`] (a decode failure there is silently a miss),
//! an identical *in-flight* simulation (the request parks on its condvar
//! rather than simulating twice), or a fresh simulation — which is
//! admission-controlled: if `capacity` scenarios are already admitted the
//! server answers [`Response::Busy`] instead of queueing unboundedly.
//! Fresh results are persisted and cached before waiters are woken, so a
//! coalesced waiter and the original submitter receive identical bytes.
//!
//! `Sweep` batches distinct cells onto the campaign engine's
//! work-stealing pool ([`ghost_core::campaign::run_indexed_partial`]);
//! duplicate cells within the batch simulate once.
//!
//! ## Telemetry
//!
//! Every counter the server keeps is a ghost-pulse registry metric, so
//! one source of truth feeds both the binary `Stats` frame and the
//! `GET /metrics` scrape endpoint — plain HTTP answered on the *same*
//! listener as the binary protocol (the two are distinguished by peeking
//! at the first two bytes: binary frames start with `"GS"`, HTTP requests
//! with `"GE"`). Each request's pipeline stages (decode → cache →
//! simulate/coalesce → store → encode) are timed into per-stage latency
//! summaries and, when `trace_capacity > 0`, retained in a bounded ring
//! exported as a Chrome trace by the `Trace` request.
//!
//! ## Robustness
//!
//! A malformed payload gets a typed [`Response::Error`] and the
//! connection survives; a malformed frame *header* tears down only that
//! connection. Simulation panics are caught (`catch_unwind`) and reported
//! as errors. The server itself is panic-free by construction (clippy
//! gate) — mutex poison is absorbed with `into_inner`.

use std::collections::HashMap;
use std::net::{TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ghost_core::scenario::{run_scenario, ScenarioSpec, WorkloadSpec};
use ghost_core::ExperimentSpec;
use ghost_mpi::{RunLimits, RunResult};
use ghost_obs::pulse::{Histogram, StageSpan, TraceRing};

use crate::client::call_with_retry;
use crate::fleet::{Fleet, FleetConfig};
use crate::pulse::ServePulse;
use crate::store::ResultStore;
use crate::wire::{content_hash, Response, ScenarioReply, ServerStats};

/// How the daemon is configured.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the persistent result store; `None` disables persistence
    /// (memory cache only).
    pub store_dir: Option<PathBuf>,
    /// Admission-control cap on concurrently admitted scenarios.
    pub capacity: usize,
    /// Simulation limits applied to every run.
    pub limits: RunLimits,
    /// Request-stage spans retained for the `Trace` request; 0 disables
    /// tracing (stage *summaries* stay on — they are near-free).
    pub trace_capacity: usize,
    /// Idle timeout on accepted connections, in milliseconds: a stalled
    /// or half-open client with no in-flight work is reaped by the event
    /// loop after this long. 0 disables the timeout.
    pub idle_timeout_ms: u64,
    /// Size cap in bytes for the persistent store; 0 means unbounded.
    /// When bounded, least-recently-touched entries are evicted — results
    /// are a pure cache, so eviction is always safe (a later request is a
    /// clean miss that re-simulates deterministically).
    pub store_capacity_bytes: u64,
    /// Worker threads that run simulation-bearing requests off the event
    /// loop; 0 picks `max(8, available_parallelism)`.
    pub workers: usize,
    /// Fleet membership; `None` runs the classic single-daemon mode.
    pub fleet: Option<FleetConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            store_dir: None,
            capacity: 64,
            limits: RunLimits::none(),
            trace_capacity: 1024,
            idle_timeout_ms: 30_000,
            store_capacity_bytes: 0,
            workers: 0,
            fleet: None,
        }
    }
}

/// A scenario being simulated right now; identical submissions park here.
struct Inflight {
    done: Mutex<Option<Result<Arc<ScenarioReply>, String>>>,
    cv: Condvar,
}

/// Lock a mutex, absorbing poison (a panicking simulation thread must not
/// wedge the server).
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// State shared by the event loop, its workers, and the fleet loop.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) store: Option<ResultStore>,
    memory: Mutex<HashMap<ScenarioSpec, Arc<ScenarioReply>>>,
    baselines: Mutex<HashMap<(WorkloadSpec, ExperimentSpec), Arc<RunResult>>>,
    inflight: Mutex<HashMap<ScenarioSpec, Arc<Inflight>>>,
    pub(crate) shutdown: AtomicBool,
    /// Hard-kill flag (chaos harness): exit without draining, stop
    /// answering mid-stream — as close to `kill -9` as in-process gets.
    pub(crate) abort: AtomicBool,
    /// Partition flag (chaos harness): accepted connections are dropped
    /// unanswered and outbound fleet traffic stops, isolating this peer
    /// without killing it.
    pub(crate) partition: AtomicBool,
    started: Instant,
    pub(crate) pulse: ServePulse,
    pub(crate) trace: TraceRing,
    pub(crate) fleet: Option<Arc<Fleet>>,
}

/// The process file-descriptor limit, for `--stats` observability.
fn process_fd_limit() -> u64 {
    #[cfg(unix)]
    {
        crate::sys::fd_limit()
    }
    #[cfg(not(unix))]
    {
        0
    }
}

impl Shared {
    /// Whether the chaos partition flag is up.
    pub(crate) fn partitioned(&self) -> bool {
        self.partition.load(Ordering::Relaxed)
    }

    /// Whether the daemon was hard-killed or asked to shut down.
    pub(crate) fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || self.abort.load(Ordering::Relaxed)
    }

    /// Refresh the fleet membership gauges from the registry state.
    pub(crate) fn refresh_fleet_gauges(&self) {
        if let Some(fleet) = &self.fleet {
            self.pulse.fleet_peers.set(fleet.known_peers().len() as i64);
            self.pulse.fleet_suspects.set(fleet.suspects().len() as i64);
        }
    }

    /// Nanoseconds since the server bound (the trace clock).
    pub(crate) fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Close a stage that began at `start`: record its duration summary
    /// and, when tracing is enabled, push the span onto the trace ring.
    pub(crate) fn stage(&self, track: u64, name: &'static str, start: u64, hist: &Histogram) {
        let end = self.now_ns();
        hist.record(end.saturating_sub(start));
        self.trace.push(StageSpan {
            track,
            name,
            start,
            end,
        });
    }

    pub(crate) fn stats(&self) -> ServerStats {
        let p = &self.pulse;
        let latency_buckets = p.request_ns.nonzero_buckets();
        // Count from the same bucket snapshot, so count and buckets agree
        // even while other connections record concurrently.
        let latency_count = latency_buckets.iter().map(|&(_, _, c)| c).sum();
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: p.requests.get(),
            scenarios: p.scenarios.get(),
            memory_hits: p.memory_hits.get(),
            disk_hits: p.disk_hits.get(),
            simulated: p.simulated.get(),
            coalesced: p.coalesced.get(),
            busy_rejections: p.busy_rejections.get(),
            decode_errors: p.decode_errors.get(),
            store_errors: p.store_errors.get(),
            queue_depth: p.queue_depth.get().max(0) as u32,
            inflight: p.inflight.get().max(0) as u32,
            capacity: self.config.capacity as u32,
            latency_buckets,
            latency_count,
            latency_min: p.request_ns.min(),
            latency_max: p.request_ns.max(),
            fd_limit: process_fd_limit(),
            accept_errors: p.accept_errors.get(),
        }
    }

    /// Render the `/metrics` exposition (refreshing the point-in-time
    /// gauges that are cheaper to poll than to maintain). Runs on the
    /// event-loop thread, so everything here must be O(1)-ish: the store
    /// gauges read the in-memory index, never the directory.
    pub(crate) fn metrics_text(&self) -> String {
        match &self.store {
            Some(store) => {
                self.pulse.store_entries.set(store.len() as i64);
                self.pulse.store_bytes.set(store.bytes() as i64);
                self.pulse.store_evictions.set(store.evictions() as i64);
            }
            None => {
                self.pulse.store_entries.set(-1);
                self.pulse.store_bytes.set(-1);
                self.pulse.store_evictions.set(-1);
            }
        }
        self.pulse.render(self.started.elapsed())
    }

    /// Loop-thread fast path for a `Submit`/`Forward`: validation and the
    /// in-memory reply cache only — no disk, no simulation, nothing that
    /// can block the event loop. `None` means the request needs a worker
    /// (and nothing has been counted yet — the worker's full
    /// [`Shared::submit`] does the counting exactly once).
    pub(crate) fn fast_submit(&self, spec: &ScenarioSpec, track: u64) -> Option<Response> {
        // Validation is cheap and pure; doing it here keeps a malformed
        // spec from ever occupying a worker slot.
        if let Err(e) = spec.validate() {
            self.pulse.scenarios.inc();
            return Some(Response::Error(e));
        }
        let t_cache = self.now_ns();
        let hit = lock(&self.memory).get(spec).cloned()?;
        self.pulse.scenarios.inc();
        self.pulse.memory_hits.inc();
        self.stage(track, "cache", t_cache, &self.pulse.cache_ns);
        Some(Response::Scenario(Box::new((*hit).clone())))
    }

    /// Loop-thread fast path for a `SubmitBatch`: answers inline only when
    /// *every* cell is a warm memory-cache hit, peeked under a single lock
    /// acquisition. Any validation failure or miss returns `None` with
    /// nothing counted — the worker-pool sweep then does all the counting
    /// (and simulation) exactly once.
    pub(crate) fn fast_batch(
        &self,
        id: u64,
        specs: &[ScenarioSpec],
        track: u64,
    ) -> Option<Response> {
        let t_cache = self.now_ns();
        let mut slots = Vec::with_capacity(specs.len());
        {
            let mem = lock(&self.memory);
            for s in specs {
                if s.validate().is_err() {
                    return None;
                }
                match mem.get(s) {
                    Some(r) => slots.push(Ok((**r).clone())),
                    None => return None,
                }
            }
        }
        for _ in specs {
            self.pulse.scenarios.inc();
            self.pulse.memory_hits.inc();
        }
        self.stage(track, "cache", t_cache, &self.pulse.cache_ns);
        Some(Response::Batch {
            id,
            slots: Ok(slots),
        })
    }

    /// Memory → disk lookup; counts hits. Does not consult in-flight work.
    fn cached(&self, spec: &ScenarioSpec, key: &[u8]) -> Option<Arc<ScenarioReply>> {
        if let Some(hit) = lock(&self.memory).get(spec) {
            self.pulse.memory_hits.inc();
            return Some(hit.clone());
        }
        let store = self.store.as_ref()?;
        let bytes = store.get(key)?;
        match ScenarioReply::from_bytes(&bytes) {
            Ok(reply) => {
                self.pulse.disk_hits.inc();
                let reply = Arc::new(reply);
                lock(&self.memory).insert(spec.clone(), reply.clone());
                Some(reply)
            }
            Err(_) => {
                // On-disk bytes that fail to decode are a miss, not a fault.
                self.pulse.store_errors.inc();
                None
            }
        }
    }

    /// Simulate `spec` (baseline memoized), publish to the caches, and
    /// return the reply. Panics inside the simulator become errors.
    fn simulate(
        &self,
        spec: &ScenarioSpec,
        key: &[u8],
        track: u64,
    ) -> Result<Arc<ScenarioReply>, String> {
        self.pulse.simulated.inc();
        let baseline = lock(&self.baselines).get(&spec.baseline_key()).cloned();
        let fresh_baseline = baseline.is_none();
        let limits = self.config.limits;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_scenario(spec, limits, baseline)
        }))
        .map_err(|_| format!("simulation panicked for {}", spec.label()))??;
        let engine_events = outcome.run.events
            + if fresh_baseline {
                outcome.baseline.events
            } else {
                0
            };
        self.pulse.engine_events.add(engine_events);
        if let Some(net) = &outcome.net {
            self.pulse.record_net(net);
        }
        lock(&self.baselines)
            .entry(spec.baseline_key())
            .or_insert_with(|| outcome.baseline.clone());
        let reply = Arc::new(ScenarioReply::from_outcome(spec, &outcome));
        if let Some(store) = &self.store {
            let t_store = self.now_ns();
            if store.put(key, &reply.to_bytes()).is_err() {
                self.pulse.store_errors.inc();
            }
            self.stage(track, "store", t_store, &self.pulse.store_ns);
        }
        lock(&self.memory).insert(spec.clone(), reply.clone());
        Ok(reply)
    }

    /// Record a peer call outcome: reset or advance its failure counter
    /// and keep the suspicion metrics in step.
    pub(crate) fn peer_outcome(&self, addr: &str, ok: bool) {
        let Some(fleet) = &self.fleet else { return };
        if ok {
            fleet.on_success(addr);
        } else if fleet.on_failure(addr) {
            self.pulse.suspects_marked.inc();
            self.pulse
                .per_peer(
                    "ghost_fleet_suspect_total",
                    addr,
                    "Peer suspicion transitions (consecutive-failure threshold crossed)",
                )
                .inc();
        }
        self.refresh_fleet_gauges();
    }

    /// If the fleet routes `key` to another live peer, forward the
    /// submission there and cache the owner's reply locally (read-through
    /// replication — this is what makes a key warmed *anywhere* warm
    /// *here* after one request). Returns `None` when this peer owns the
    /// key, the fleet is off or partitioned, or the owner is unreachable
    /// after bounded retry — the caller then simulates locally, trading
    /// latency for availability instead of failing the request.
    fn try_forward(
        &self,
        spec: &ScenarioSpec,
        key: &[u8],
        track: u64,
    ) -> Option<Arc<ScenarioReply>> {
        let fleet = self.fleet.as_ref()?;
        if self.partitioned() {
            return None;
        }
        let owner = fleet.owner_of(content_hash(key));
        if owner == fleet.advertise() {
            return None;
        }
        let t0 = self.now_ns();
        let result = call_with_retry(owner.as_str(), fleet.rpc_policy(), |c| c.forward(spec));
        self.stage(track, "forward", t0, &self.pulse.forward_ns);
        match result {
            Ok(reply) => {
                self.peer_outcome(&owner, true);
                self.pulse.forward.inc();
                self.pulse
                    .per_peer(
                        "ghost_fleet_forward_total",
                        &owner,
                        "Submissions forwarded to the owning peer",
                    )
                    .inc();
                let reply = Arc::new(reply);
                lock(&self.memory).insert(spec.clone(), reply.clone());
                if let Some(store) = &self.store {
                    if store.put(key, &reply.to_bytes()).is_err() {
                        self.pulse.store_errors.inc();
                    }
                }
                Some(reply)
            }
            Err(_) => {
                self.pulse.forward_fail.inc();
                self.peer_outcome(&owner, false);
                None
            }
        }
    }

    /// Full submit path: cache → forward-to-owner → coalesce → admission
    /// control → simulate. `allow_forward` is false for peer-forwarded
    /// requests: the receiver always serves locally, so routing cannot
    /// loop no matter how peers' membership views disagree.
    pub(crate) fn submit(&self, spec: &ScenarioSpec, track: u64, allow_forward: bool) -> Response {
        self.pulse.scenarios.inc();
        if let Err(e) = spec.validate() {
            return Response::Error(e);
        }
        let key = crate::wire::scenario_key_bytes(spec);
        let t_cache = self.now_ns();
        let hit = self.cached(spec, &key);
        self.stage(track, "cache", t_cache, &self.pulse.cache_ns);
        if let Some(hit) = hit {
            return Response::Scenario(Box::new((*hit).clone()));
        }
        if allow_forward {
            if let Some(reply) = self.try_forward(spec, &key, track) {
                return Response::Scenario(Box::new((*reply).clone()));
            }
        }

        // Join an identical in-flight simulation, or register ourselves.
        enum Role {
            Leader(Arc<Inflight>),
            Waiter(Arc<Inflight>),
        }
        let role = {
            let mut inflight = lock(&self.inflight);
            if let Some(cell) = inflight.get(spec) {
                self.pulse.coalesced.inc();
                Role::Waiter(cell.clone())
            } else {
                let depth = self.pulse.queue_depth.add(1);
                if depth > self.config.capacity as i64 {
                    self.pulse.queue_depth.add(-1);
                    self.pulse.busy_rejections.inc();
                    return Response::Busy {
                        active: (depth - 1).max(0) as u32,
                        capacity: self.config.capacity as u32,
                    };
                }
                let cell = Arc::new(Inflight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                inflight.insert(spec.clone(), cell.clone());
                Role::Leader(cell)
            }
        };

        let result = match role {
            Role::Leader(cell) => {
                self.pulse.inflight.add(1);
                let t_sim = self.now_ns();
                let result = self.simulate(spec, &key, track);
                self.stage(track, "simulate", t_sim, &self.pulse.simulate_ns);
                lock(&self.inflight).remove(spec);
                self.pulse.inflight.add(-1);
                self.pulse.queue_depth.add(-1);
                *lock(&cell.done) = Some(result.clone());
                cell.cv.notify_all();
                result
            }
            Role::Waiter(cell) => {
                let t_wait = self.now_ns();
                let result = {
                    let mut done = lock(&cell.done);
                    loop {
                        if let Some(r) = done.as_ref() {
                            break r.clone();
                        }
                        done = cell.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                    }
                };
                self.stage(track, "coalesce", t_wait, &self.pulse.coalesce_ns);
                result
            }
        };
        match result {
            Ok(reply) => Response::Scenario(Box::new((*reply).clone())),
            Err(e) => Response::Error(e),
        }
    }

    /// Answer one inbound gossip: learn the sender and its view, reply
    /// with ours. An inbound heartbeat is direct evidence of life, so it
    /// also clears any suspicion of the sender.
    pub(crate) fn gossip(&self, from: &str, peers: &[String]) -> Response {
        let Some(fleet) = &self.fleet else {
            return Response::Error("fleet mode is not enabled on this server".into());
        };
        fleet.on_success(from);
        fleet.merge(peers);
        self.refresh_fleet_gauges();
        Response::Gossip {
            peers: fleet.view(),
        }
    }

    /// Sweep path: dedup identical cells, batch distinct misses onto the
    /// work-stealing pool, answer in request order.
    pub(crate) fn sweep(&self, specs: &[ScenarioSpec], track: u64) -> Response {
        self.pulse.scenarios.add(specs.len() as u64);

        // Dedup: identical cells share one slot in `work`.
        let mut order: Vec<usize> = Vec::with_capacity(specs.len());
        let mut work: Vec<&ScenarioSpec> = Vec::new();
        let mut seen: HashMap<&ScenarioSpec, usize> = HashMap::new();
        for spec in specs {
            let slot = *seen.entry(spec).or_insert_with(|| {
                work.push(spec);
                work.len() - 1
            });
            order.push(slot);
        }

        let depth = self.pulse.queue_depth.add(work.len() as i64);
        if depth > self.config.capacity as i64 {
            self.pulse.queue_depth.add(-(work.len() as i64));
            self.pulse.busy_rejections.inc();
            return Response::Busy {
                active: (depth - work.len() as i64).max(0) as u32,
                capacity: self.config.capacity as u32,
            };
        }

        let t_sweep = self.now_ns();
        let results: Vec<Result<Arc<ScenarioReply>, String>> =
            ghost_core::campaign::run_indexed_partial(
                work.len(),
                |i| work[i].label(),
                |i| {
                    let spec = work[i];
                    spec.validate()?;
                    let key = crate::wire::scenario_key_bytes(spec);
                    if let Some(hit) = self.cached(spec, &key) {
                        return Ok(hit);
                    }
                    self.simulate(spec, &key, track)
                },
                0,
                Duration::ZERO,
            )
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect();
        self.pulse.queue_depth.add(-(work.len() as i64));
        self.stage(track, "simulate", t_sweep, &self.pulse.simulate_ns);

        Response::Sweep(
            order
                .iter()
                .map(|&slot| match &results[slot] {
                    Ok(reply) => Ok((**reply).clone()),
                    Err(e) => Err(e.clone()),
                })
                .collect(),
        )
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and open the
    /// store if one is configured. When a fleet is configured, an empty
    /// advertise address is filled in from the bound socket.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open_bounded(dir, config.store_capacity_bytes)?),
            None => None,
        };
        let mut config = config;
        let fleet = match config.fleet.take() {
            Some(mut fc) => {
                if fc.advertise.is_empty() {
                    fc.advertise = listener.local_addr()?.to_string();
                }
                Some(Arc::new(Fleet::new(fc)))
            }
            None => None,
        };
        let pulse = ServePulse::new(config.capacity);
        let trace = TraceRing::new(config.trace_capacity);
        let shared = Arc::new(Shared {
            store,
            config,
            memory: Mutex::new(HashMap::new()),
            baselines: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            partition: AtomicBool::new(false),
            started: Instant::now(),
            pulse,
            trace,
            fleet,
        });
        shared.refresh_fleet_gauges();
        match &shared.store {
            Some(store) if store.capacity_bytes() > 0 => shared
                .pulse
                .store_capacity
                .set(store.capacity_bytes() as i64),
            Some(_) => shared.pulse.store_capacity.set(0),
            None => shared.pulse.store_capacity.set(-1),
        }
        Ok(Self { listener, shared })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `Shutdown` request arrives, then drain in-flight work
    /// and return. All connections are driven by one readiness event loop
    /// (see [`crate::event_loop`]); a fleet configuration additionally
    /// starts the gossip/anti-entropy loop.
    #[cfg(unix)]
    pub fn run(self) -> std::io::Result<()> {
        let fleet_loop = if self.shared.fleet.is_some() {
            let shared = self.shared.clone();
            Some(std::thread::spawn(move || {
                crate::gossip::fleet_loop(&shared)
            }))
        } else {
            None
        };
        let result = crate::event_loop::run(self.listener, &self.shared);
        if let Some(h) = fleet_loop {
            let _ = h.join();
        }
        result
    }

    /// The serving core is built on Unix readiness APIs (`epoll`/`poll`).
    #[cfg(not(unix))]
    pub fn run(self) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "ghost-serve requires a Unix readiness API (epoll/poll)",
        ))
    }

    /// Run on a background thread and return a handle for lifecycle
    /// control — the chaos harness's kill/partition/restart lever, and a
    /// convenient way to embed a daemon in tests.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = self.shared.clone();
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

/// Lifecycle control over a spawned [`Server`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Raise or drop the chaos partition: while up, inbound connections
    /// are accepted and silently dropped and outbound fleet traffic
    /// stops. The daemon itself keeps running.
    pub fn partition(&self, on: bool) {
        self.shared.partition.store(on, Ordering::Relaxed);
    }

    /// Whether the partition flag is currently up.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned()
    }

    /// A point-in-time counter snapshot (works even while partitioned —
    /// no socket involved).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Hard kill: stop accepting, skip the drain, return as soon as the
    /// accept loop notices (≤ one poll interval). In-flight handler
    /// threads die with their connections.
    pub fn kill(&mut self) {
        self.shared.abort.store(true, Ordering::Relaxed);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }

    /// Graceful stop: drain admitted work, then return.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }

    /// Whether the serving thread has exited.
    pub fn is_finished(&self) -> bool {
        self.join.as_ref().is_none_or(|h| h.is_finished())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::wire::{read_frame, write_frame, Request};
    use ghost_core::scenario::InjectionSpec;
    use ghost_engine::time::MS;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            workload: WorkloadSpec::Bsp {
                steps: 3,
                compute: MS,
            },
            machine: ExperimentSpec::flat(4, seed),
            injection: InjectionSpec::uncoordinated(100.0, 0.01),
        }
    }

    fn start(config: ServeConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            server.run().unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn submit_stats_shutdown_roundtrip() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let a = client.submit(&spec(1)).unwrap();
        let b = client.submit(&spec(1)).unwrap();
        assert_eq!(a, b, "repeat must be served identically");
        let stats = client.stats().unwrap();
        assert_eq!(stats.scenarios, 2);
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.memory_hits, 1);
        // The stats request itself is timed after its snapshot, so only the
        // two submits are visible here.
        assert_eq!(stats.latency_count, 2);
        assert_eq!(stats.queue_depth, 0, "all work finished");
        assert_eq!(stats.inflight, 0);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn sweep_dedups_identical_cells() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let cells = vec![spec(1), spec(2), spec(1)];
        let replies = client.sweep(&cells).unwrap();
        assert_eq!(replies.len(), 3);
        assert_eq!(
            replies[0].as_ref().unwrap(),
            replies[2].as_ref().unwrap(),
            "duplicate cells share one result"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats.simulated, 2, "third cell coalesced in-batch");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn invalid_spec_is_a_typed_error_not_a_crash() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let mut bad = spec(1);
        bad.injection.net_ppm = 2_000_000;
        let err = client.submit(&bad).unwrap_err();
        assert!(matches!(err, crate::client::ClientError::Server(_)));
        // The connection survives a rejected spec.
        let ok = client.submit(&spec(1));
        assert!(ok.is_ok());
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn zero_capacity_answers_busy() {
        let (addr, handle) = start(ServeConfig {
            capacity: 0,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).unwrap();
        let err = client.submit(&spec(1)).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Busy { capacity: 0, .. }
        ));
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_payload_keeps_connection_alive() {
        let (addr, handle) = start(ServeConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        // Valid frame, garbage payload.
        write_frame(&mut stream, &[0xff, 0x01, 0x02]).unwrap();
        let resp = crate::wire::decode_response(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        // Same connection still answers a well-formed request.
        write_frame(&mut stream, &crate::wire::encode_request(&Request::Stats)).unwrap();
        let resp = crate::wire::decode_response(&read_frame(&mut stream).unwrap()).unwrap();
        match resp {
            Response::Stats(s) => assert_eq!(s.decode_errors, 1),
            other => panic!("expected stats, got {other:?}"),
        }
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn http_scrape_shares_the_listener_with_frames() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        client.submit(&spec(1)).unwrap();
        client.submit(&spec(1)).unwrap();

        let text = crate::client::scrape_metrics(addr).unwrap();
        let expo = ghost_obs::pulse::parse_exposition(&text).unwrap();
        assert_eq!(expo.get("ghost_serve_memory_hits_total"), Some(1.0));
        assert_eq!(expo.get("ghost_serve_simulated_total"), Some(1.0));
        assert_eq!(expo.get("ghost_serve_store_entries"), Some(-1.0));
        assert!(expo
            .get("ghost_serve_request_ns{quantile=\"0.99\"}")
            .is_some());

        // The binary connection is still alive after the HTTP one.
        assert!(client.stats().is_ok());
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn http_unknown_path_is_404() {
        let (addr, handle) = start(ServeConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 404"));
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn trace_request_exports_valid_chrome_json() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        client.submit(&spec(1)).unwrap();
        let json = client.server_trace().unwrap();
        let stats = ghost_obs::validate_trace(&json).unwrap();
        assert!(stats.complete >= 3, "decode, cache, simulate at least");
        for name in ["decode", "cache", "simulate", "encode"] {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn trace_capacity_zero_disables_tracing() {
        let (addr, handle) = start(ServeConfig {
            trace_capacity: 0,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).unwrap();
        client.submit(&spec(1)).unwrap();
        let json = client.server_trace().unwrap();
        let stats = ghost_obs::validate_trace(&json).unwrap();
        assert_eq!(stats.events, 0, "ring disabled, trace is empty");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}

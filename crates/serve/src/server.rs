//! The ghost-serve daemon: TCP accept loop, coalescing scheduler,
//! admission control, and the two-level (memory + disk) result cache.
//!
//! ## Request lifecycle
//!
//! A `Submit` is answered from, in order: the in-memory reply cache, the
//! persistent [`ResultStore`] (a decode failure there is silently a miss),
//! an identical *in-flight* simulation (the request parks on its condvar
//! rather than simulating twice), or a fresh simulation — which is
//! admission-controlled: if `capacity` scenarios are already admitted the
//! server answers [`Response::Busy`] instead of queueing unboundedly.
//! Fresh results are persisted and cached before waiters are woken, so a
//! coalesced waiter and the original submitter receive identical bytes.
//!
//! `Sweep` batches distinct cells onto the campaign engine's
//! work-stealing pool ([`ghost_core::campaign::run_indexed_partial`]);
//! duplicate cells within the batch simulate once.
//!
//! ## Robustness
//!
//! A malformed payload gets a typed [`Response::Error`] and the
//! connection survives; a malformed frame *header* tears down only that
//! connection. Simulation panics are caught (`catch_unwind`) and reported
//! as errors. The server itself is panic-free by construction (clippy
//! gate) — mutex poison is absorbed with `into_inner`.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ghost_core::scenario::{run_scenario, ScenarioSpec, WorkloadSpec};
use ghost_core::ExperimentSpec;
use ghost_mpi::{RunLimits, RunResult};
use ghost_obs::metrics::Log2Hist;

use crate::store::ResultStore;
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, ScenarioReply,
    ServerStats, WireError,
};

/// How the daemon is configured.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the persistent result store; `None` disables persistence
    /// (memory cache only).
    pub store_dir: Option<PathBuf>,
    /// Admission-control cap on concurrently admitted scenarios.
    pub capacity: usize,
    /// Simulation limits applied to every run.
    pub limits: RunLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            store_dir: None,
            capacity: 64,
            limits: RunLimits::none(),
        }
    }
}

/// A scenario being simulated right now; identical submissions park here.
struct Inflight {
    done: Mutex<Option<Result<Arc<ScenarioReply>, String>>>,
    cv: Condvar,
}

/// Lock a mutex, absorbing poison (a panicking simulation thread must not
/// wedge the server).
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// State shared by the accept loop and all connection handlers.
struct Shared {
    config: ServeConfig,
    store: Option<ResultStore>,
    memory: Mutex<HashMap<ScenarioSpec, Arc<ScenarioReply>>>,
    baselines: Mutex<HashMap<(WorkloadSpec, ExperimentSpec), Arc<RunResult>>>,
    inflight: Mutex<HashMap<ScenarioSpec, Arc<Inflight>>>,
    active: AtomicUsize,
    shutdown: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    scenarios: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    simulated: AtomicU64,
    coalesced: AtomicU64,
    busy_rejections: AtomicU64,
    decode_errors: AtomicU64,
    store_errors: AtomicU64,
    latency: Mutex<Log2Hist>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let hist = lock(&self.latency);
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            scenarios: self.scenarios.load(Ordering::Relaxed),
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
            queue_depth: self.active.load(Ordering::Relaxed) as u32,
            capacity: self.config.capacity as u32,
            latency_buckets: hist.nonzero_buckets(),
            latency_count: hist.count(),
            latency_min: hist.min(),
            latency_max: hist.max(),
        }
    }

    /// Memory → disk lookup; counts hits. Does not consult in-flight work.
    fn cached(&self, spec: &ScenarioSpec, key: &[u8]) -> Option<Arc<ScenarioReply>> {
        if let Some(hit) = lock(&self.memory).get(spec) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit.clone());
        }
        let store = self.store.as_ref()?;
        let bytes = store.get(key)?;
        match ScenarioReply::from_bytes(&bytes) {
            Ok(reply) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let reply = Arc::new(reply);
                lock(&self.memory).insert(spec.clone(), reply.clone());
                Some(reply)
            }
            Err(_) => {
                // On-disk bytes that fail to decode are a miss, not a fault.
                self.store_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Simulate `spec` (baseline memoized), publish to the caches, and
    /// return the reply. Panics inside the simulator become errors.
    fn simulate(&self, spec: &ScenarioSpec, key: &[u8]) -> Result<Arc<ScenarioReply>, String> {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let baseline = lock(&self.baselines).get(&spec.baseline_key()).cloned();
        let limits = self.config.limits;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_scenario(spec, limits, baseline)
        }))
        .map_err(|_| format!("simulation panicked for {}", spec.label()))??;
        lock(&self.baselines)
            .entry(spec.baseline_key())
            .or_insert_with(|| outcome.baseline.clone());
        let reply = Arc::new(ScenarioReply::from_outcome(spec, &outcome));
        if let Some(store) = &self.store {
            if store.put(key, &reply.to_bytes()).is_err() {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        lock(&self.memory).insert(spec.clone(), reply.clone());
        Ok(reply)
    }

    /// Full submit path: cache → coalesce → admission control → simulate.
    fn submit(&self, spec: &ScenarioSpec) -> Response {
        self.scenarios.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = spec.validate() {
            return Response::Error(e);
        }
        let key = crate::wire::scenario_key_bytes(spec);
        if let Some(hit) = self.cached(spec, &key) {
            return Response::Scenario(Box::new((*hit).clone()));
        }

        // Join an identical in-flight simulation, or register ourselves.
        enum Role {
            Leader(Arc<Inflight>),
            Waiter(Arc<Inflight>),
        }
        let role = {
            let mut inflight = lock(&self.inflight);
            if let Some(cell) = inflight.get(spec) {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Role::Waiter(cell.clone())
            } else {
                let admitted = self.active.fetch_add(1, Ordering::Relaxed);
                if admitted >= self.config.capacity {
                    self.active.fetch_sub(1, Ordering::Relaxed);
                    self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    return Response::Busy {
                        active: admitted as u32,
                        capacity: self.config.capacity as u32,
                    };
                }
                let cell = Arc::new(Inflight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                inflight.insert(spec.clone(), cell.clone());
                Role::Leader(cell)
            }
        };

        let result = match role {
            Role::Leader(cell) => {
                let result = self.simulate(spec, &key);
                lock(&self.inflight).remove(spec);
                self.active.fetch_sub(1, Ordering::Relaxed);
                *lock(&cell.done) = Some(result.clone());
                cell.cv.notify_all();
                result
            }
            Role::Waiter(cell) => {
                let mut done = lock(&cell.done);
                loop {
                    if let Some(r) = done.as_ref() {
                        break r.clone();
                    }
                    done = cell.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                }
            }
        };
        match result {
            Ok(reply) => Response::Scenario(Box::new((*reply).clone())),
            Err(e) => Response::Error(e),
        }
    }

    /// Sweep path: dedup identical cells, batch distinct misses onto the
    /// work-stealing pool, answer in request order.
    fn sweep(&self, specs: &[ScenarioSpec]) -> Response {
        self.scenarios
            .fetch_add(specs.len() as u64, Ordering::Relaxed);

        // Dedup: identical cells share one slot in `work`.
        let mut order: Vec<usize> = Vec::with_capacity(specs.len());
        let mut work: Vec<&ScenarioSpec> = Vec::new();
        let mut seen: HashMap<&ScenarioSpec, usize> = HashMap::new();
        for spec in specs {
            let slot = *seen.entry(spec).or_insert_with(|| {
                work.push(spec);
                work.len() - 1
            });
            order.push(slot);
        }

        let admitted = self.active.fetch_add(work.len(), Ordering::Relaxed);
        if admitted + work.len() > self.config.capacity {
            self.active.fetch_sub(work.len(), Ordering::Relaxed);
            self.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Response::Busy {
                active: admitted as u32,
                capacity: self.config.capacity as u32,
            };
        }

        let results: Vec<Result<Arc<ScenarioReply>, String>> =
            ghost_core::campaign::run_indexed_partial(
                work.len(),
                |i| work[i].label(),
                |i| {
                    let spec = work[i];
                    spec.validate()?;
                    let key = crate::wire::scenario_key_bytes(spec);
                    if let Some(hit) = self.cached(spec, &key) {
                        return Ok(hit);
                    }
                    self.simulate(spec, &key)
                },
                0,
                Duration::ZERO,
            )
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect();
        self.active.fetch_sub(work.len(), Ordering::Relaxed);

        Response::Sweep(
            order
                .iter()
                .map(|&slot| match &results[slot] {
                    Ok(reply) => Ok((**reply).clone()),
                    Err(e) => Err(e.clone()),
                })
                .collect(),
        )
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and open the
    /// store if one is configured.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            store,
            config,
            memory: Mutex::new(HashMap::new()),
            baselines: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            scenarios: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            latency: Mutex::new(Log2Hist::new()),
        });
        Ok(Self { listener, shared })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `Shutdown` request arrives, then drain in-flight work
    /// and return. Each connection gets its own handler thread.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if self.shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let shared = self.shared.clone();
                    // Detached: the handler dies with its connection.
                    std::thread::spawn(move || handle_connection(stream, &shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: wait for admitted work to finish.
        while self.shared.active.load(Ordering::Relaxed) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

/// Serve one connection until it closes, a header-level error occurs, or
/// shutdown is acknowledged.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(p) => p,
            Err(WireError::Closed) => return,
            Err(e) => {
                shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                // Header-level: the stream is desynchronized. Best-effort
                // error reply, then drop the connection.
                let _ = write_frame(
                    &mut writer,
                    &encode_response(&Response::Error(e.to_string())),
                );
                return;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let (response, stop) = match decode_request(&payload) {
            Err(e) => {
                // Payload-level: typed error, connection survives.
                shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                (Response::Error(format!("bad request: {e}")), false)
            }
            Ok(Request::Submit(spec)) => (shared.submit(&spec), false),
            Ok(Request::Sweep(specs)) => (shared.sweep(&specs), false),
            Ok(Request::Stats) => (Response::Stats(Box::new(shared.stats())), false),
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::Relaxed);
                (Response::ShutdownAck, true)
            }
        };
        lock(&shared.latency).record(t0.elapsed().as_nanos() as u64);
        if write_frame(&mut writer, &encode_response(&response)).is_err() {
            return;
        }
        if stop {
            let _ = writer.flush();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use ghost_core::scenario::InjectionSpec;
    use ghost_engine::time::MS;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            workload: WorkloadSpec::Bsp {
                steps: 3,
                compute: MS,
            },
            machine: ExperimentSpec::flat(4, seed),
            injection: InjectionSpec::uncoordinated(100.0, 0.01),
        }
    }

    fn start(config: ServeConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            server.run().unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn submit_stats_shutdown_roundtrip() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let a = client.submit(&spec(1)).unwrap();
        let b = client.submit(&spec(1)).unwrap();
        assert_eq!(a, b, "repeat must be served identically");
        let stats = client.stats().unwrap();
        assert_eq!(stats.scenarios, 2);
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.memory_hits, 1);
        // The stats request itself is timed after its snapshot, so only the
        // two submits are visible here.
        assert_eq!(stats.latency_count, 2);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn sweep_dedups_identical_cells() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let cells = vec![spec(1), spec(2), spec(1)];
        let replies = client.sweep(&cells).unwrap();
        assert_eq!(replies.len(), 3);
        assert_eq!(
            replies[0].as_ref().unwrap(),
            replies[2].as_ref().unwrap(),
            "duplicate cells share one result"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats.simulated, 2, "third cell coalesced in-batch");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn invalid_spec_is_a_typed_error_not_a_crash() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let mut bad = spec(1);
        bad.injection.net_ppm = 2_000_000;
        let err = client.submit(&bad).unwrap_err();
        assert!(matches!(err, crate::client::ClientError::Server(_)));
        // The connection survives a rejected spec.
        let ok = client.submit(&spec(1));
        assert!(ok.is_ok());
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn zero_capacity_answers_busy() {
        let (addr, handle) = start(ServeConfig {
            capacity: 0,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).unwrap();
        let err = client.submit(&spec(1)).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Busy { capacity: 0, .. }
        ));
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_payload_keeps_connection_alive() {
        let (addr, handle) = start(ServeConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        // Valid frame, garbage payload.
        write_frame(&mut stream, &[0xff, 0x01, 0x02]).unwrap();
        let resp = crate::wire::decode_response(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        // Same connection still answers a well-formed request.
        write_frame(&mut stream, &crate::wire::encode_request(&Request::Stats)).unwrap();
        let resp = crate::wire::decode_response(&read_frame(&mut stream).unwrap()).unwrap();
        match resp {
            Response::Stats(s) => assert_eq!(s.decode_errors, 1),
            other => panic!("expected stats, got {other:?}"),
        }
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}

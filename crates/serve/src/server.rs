//! The ghost-serve daemon: TCP accept loop, coalescing scheduler,
//! admission control, the two-level (memory + disk) result cache, and
//! the ghost-pulse telemetry layer.
//!
//! ## Request lifecycle
//!
//! A `Submit` is answered from, in order: the in-memory reply cache, the
//! persistent [`ResultStore`] (a decode failure there is silently a miss),
//! an identical *in-flight* simulation (the request parks on its condvar
//! rather than simulating twice), or a fresh simulation — which is
//! admission-controlled: if `capacity` scenarios are already admitted the
//! server answers [`Response::Busy`] instead of queueing unboundedly.
//! Fresh results are persisted and cached before waiters are woken, so a
//! coalesced waiter and the original submitter receive identical bytes.
//!
//! `Sweep` batches distinct cells onto the campaign engine's
//! work-stealing pool ([`ghost_core::campaign::run_indexed_partial`]);
//! duplicate cells within the batch simulate once.
//!
//! ## Telemetry
//!
//! Every counter the server keeps is a ghost-pulse registry metric, so
//! one source of truth feeds both the binary `Stats` frame and the
//! `GET /metrics` scrape endpoint — plain HTTP answered on the *same*
//! listener as the binary protocol (the two are distinguished by peeking
//! at the first two bytes: binary frames start with `"GS"`, HTTP requests
//! with `"GE"`). Each request's pipeline stages (decode → cache →
//! simulate/coalesce → store → encode) are timed into per-stage latency
//! summaries and, when `trace_capacity > 0`, retained in a bounded ring
//! exported as a Chrome trace by the `Trace` request.
//!
//! ## Robustness
//!
//! A malformed payload gets a typed [`Response::Error`] and the
//! connection survives; a malformed frame *header* tears down only that
//! connection. Simulation panics are caught (`catch_unwind`) and reported
//! as errors. The server itself is panic-free by construction (clippy
//! gate) — mutex poison is absorbed with `into_inner`.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ghost_core::scenario::{run_scenario, ScenarioSpec, WorkloadSpec};
use ghost_core::ExperimentSpec;
use ghost_mpi::{RunLimits, RunResult};
use ghost_obs::pulse::{Histogram, StageSpan, TraceRing};

use crate::client::call_with_retry;
use crate::fleet::{Fleet, FleetConfig};
use crate::pulse::ServePulse;
use crate::store::ResultStore;
use crate::wire::{
    content_hash, decode_request, encode_response, read_frame_versioned, write_frame,
    write_frame_v, Request, Response, ScenarioReply, ServerStats, WireError, SYNC_BUCKETS,
};

/// How the daemon is configured.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the persistent result store; `None` disables persistence
    /// (memory cache only).
    pub store_dir: Option<PathBuf>,
    /// Admission-control cap on concurrently admitted scenarios.
    pub capacity: usize,
    /// Simulation limits applied to every run.
    pub limits: RunLimits,
    /// Request-stage spans retained for the `Trace` request; 0 disables
    /// tracing (stage *summaries* stay on — they are near-free).
    pub trace_capacity: usize,
    /// Read/write timeout on accepted sockets, in milliseconds: a stalled
    /// or half-open client is reaped after this long instead of pinning
    /// its handler thread forever. 0 disables the timeout.
    pub idle_timeout_ms: u64,
    /// Fleet membership; `None` runs the classic single-daemon mode.
    pub fleet: Option<FleetConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            store_dir: None,
            capacity: 64,
            limits: RunLimits::none(),
            trace_capacity: 1024,
            idle_timeout_ms: 30_000,
            fleet: None,
        }
    }
}

/// A scenario being simulated right now; identical submissions park here.
struct Inflight {
    done: Mutex<Option<Result<Arc<ScenarioReply>, String>>>,
    cv: Condvar,
}

/// Lock a mutex, absorbing poison (a panicking simulation thread must not
/// wedge the server).
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// State shared by the accept loop and all connection handlers.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) store: Option<ResultStore>,
    memory: Mutex<HashMap<ScenarioSpec, Arc<ScenarioReply>>>,
    baselines: Mutex<HashMap<(WorkloadSpec, ExperimentSpec), Arc<RunResult>>>,
    inflight: Mutex<HashMap<ScenarioSpec, Arc<Inflight>>>,
    pub(crate) shutdown: AtomicBool,
    /// Hard-kill flag (chaos harness): exit without draining, stop
    /// answering mid-stream — as close to `kill -9` as in-process gets.
    pub(crate) abort: AtomicBool,
    /// Partition flag (chaos harness): accepted connections are dropped
    /// unanswered and outbound fleet traffic stops, isolating this peer
    /// without killing it.
    pub(crate) partition: AtomicBool,
    started: Instant,
    pub(crate) pulse: ServePulse,
    trace: TraceRing,
    pub(crate) fleet: Option<Arc<Fleet>>,
}

impl Shared {
    /// Whether the chaos partition flag is up.
    pub(crate) fn partitioned(&self) -> bool {
        self.partition.load(Ordering::Relaxed)
    }

    /// Whether the daemon was hard-killed or asked to shut down.
    pub(crate) fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || self.abort.load(Ordering::Relaxed)
    }

    /// Refresh the fleet membership gauges from the registry state.
    pub(crate) fn refresh_fleet_gauges(&self) {
        if let Some(fleet) = &self.fleet {
            self.pulse.fleet_peers.set(fleet.known_peers().len() as i64);
            self.pulse.fleet_suspects.set(fleet.suspects().len() as i64);
        }
    }

    /// Nanoseconds since the server bound (the trace clock).
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Close a stage that began at `start`: record its duration summary
    /// and, when tracing is enabled, push the span onto the trace ring.
    fn stage(&self, track: u64, name: &'static str, start: u64, hist: &Histogram) {
        let end = self.now_ns();
        hist.record(end.saturating_sub(start));
        self.trace.push(StageSpan {
            track,
            name,
            start,
            end,
        });
    }

    fn stats(&self) -> ServerStats {
        let p = &self.pulse;
        let latency_buckets = p.request_ns.nonzero_buckets();
        // Count from the same bucket snapshot, so count and buckets agree
        // even while other connections record concurrently.
        let latency_count = latency_buckets.iter().map(|&(_, _, c)| c).sum();
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: p.requests.get(),
            scenarios: p.scenarios.get(),
            memory_hits: p.memory_hits.get(),
            disk_hits: p.disk_hits.get(),
            simulated: p.simulated.get(),
            coalesced: p.coalesced.get(),
            busy_rejections: p.busy_rejections.get(),
            decode_errors: p.decode_errors.get(),
            store_errors: p.store_errors.get(),
            queue_depth: p.queue_depth.get().max(0) as u32,
            inflight: p.inflight.get().max(0) as u32,
            capacity: self.config.capacity as u32,
            latency_buckets,
            latency_count,
            latency_min: p.request_ns.min(),
            latency_max: p.request_ns.max(),
        }
    }

    /// Render the `/metrics` exposition (refreshing the point-in-time
    /// gauges that are cheaper to poll than to maintain).
    fn metrics_text(&self) -> String {
        match &self.store {
            Some(store) => self.pulse.store_entries.set(store.len() as i64),
            None => self.pulse.store_entries.set(-1),
        }
        self.pulse.render(self.started.elapsed())
    }

    /// Memory → disk lookup; counts hits. Does not consult in-flight work.
    fn cached(&self, spec: &ScenarioSpec, key: &[u8]) -> Option<Arc<ScenarioReply>> {
        if let Some(hit) = lock(&self.memory).get(spec) {
            self.pulse.memory_hits.inc();
            return Some(hit.clone());
        }
        let store = self.store.as_ref()?;
        let bytes = store.get(key)?;
        match ScenarioReply::from_bytes(&bytes) {
            Ok(reply) => {
                self.pulse.disk_hits.inc();
                let reply = Arc::new(reply);
                lock(&self.memory).insert(spec.clone(), reply.clone());
                Some(reply)
            }
            Err(_) => {
                // On-disk bytes that fail to decode are a miss, not a fault.
                self.pulse.store_errors.inc();
                None
            }
        }
    }

    /// Simulate `spec` (baseline memoized), publish to the caches, and
    /// return the reply. Panics inside the simulator become errors.
    fn simulate(
        &self,
        spec: &ScenarioSpec,
        key: &[u8],
        track: u64,
    ) -> Result<Arc<ScenarioReply>, String> {
        self.pulse.simulated.inc();
        let baseline = lock(&self.baselines).get(&spec.baseline_key()).cloned();
        let fresh_baseline = baseline.is_none();
        let limits = self.config.limits;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_scenario(spec, limits, baseline)
        }))
        .map_err(|_| format!("simulation panicked for {}", spec.label()))??;
        let engine_events = outcome.run.events
            + if fresh_baseline {
                outcome.baseline.events
            } else {
                0
            };
        self.pulse.engine_events.add(engine_events);
        lock(&self.baselines)
            .entry(spec.baseline_key())
            .or_insert_with(|| outcome.baseline.clone());
        let reply = Arc::new(ScenarioReply::from_outcome(spec, &outcome));
        if let Some(store) = &self.store {
            let t_store = self.now_ns();
            if store.put(key, &reply.to_bytes()).is_err() {
                self.pulse.store_errors.inc();
            }
            self.stage(track, "store", t_store, &self.pulse.store_ns);
        }
        lock(&self.memory).insert(spec.clone(), reply.clone());
        Ok(reply)
    }

    /// Record a peer call outcome: reset or advance its failure counter
    /// and keep the suspicion metrics in step.
    pub(crate) fn peer_outcome(&self, addr: &str, ok: bool) {
        let Some(fleet) = &self.fleet else { return };
        if ok {
            fleet.on_success(addr);
        } else if fleet.on_failure(addr) {
            self.pulse.suspects_marked.inc();
            self.pulse
                .per_peer(
                    "ghost_fleet_suspect_total",
                    addr,
                    "Peer suspicion transitions (consecutive-failure threshold crossed)",
                )
                .inc();
        }
        self.refresh_fleet_gauges();
    }

    /// If the fleet routes `key` to another live peer, forward the
    /// submission there and cache the owner's reply locally (read-through
    /// replication — this is what makes a key warmed *anywhere* warm
    /// *here* after one request). Returns `None` when this peer owns the
    /// key, the fleet is off or partitioned, or the owner is unreachable
    /// after bounded retry — the caller then simulates locally, trading
    /// latency for availability instead of failing the request.
    fn try_forward(
        &self,
        spec: &ScenarioSpec,
        key: &[u8],
        track: u64,
    ) -> Option<Arc<ScenarioReply>> {
        let fleet = self.fleet.as_ref()?;
        if self.partitioned() {
            return None;
        }
        let owner = fleet.owner_of(content_hash(key));
        if owner == fleet.advertise() {
            return None;
        }
        let t0 = self.now_ns();
        let result = call_with_retry(owner.as_str(), fleet.rpc_policy(), |c| c.forward(spec));
        self.stage(track, "forward", t0, &self.pulse.forward_ns);
        match result {
            Ok(reply) => {
                self.peer_outcome(&owner, true);
                self.pulse.forward.inc();
                self.pulse
                    .per_peer(
                        "ghost_fleet_forward_total",
                        &owner,
                        "Submissions forwarded to the owning peer",
                    )
                    .inc();
                let reply = Arc::new(reply);
                lock(&self.memory).insert(spec.clone(), reply.clone());
                if let Some(store) = &self.store {
                    if store.put(key, &reply.to_bytes()).is_err() {
                        self.pulse.store_errors.inc();
                    }
                }
                Some(reply)
            }
            Err(_) => {
                self.pulse.forward_fail.inc();
                self.peer_outcome(&owner, false);
                None
            }
        }
    }

    /// Full submit path: cache → forward-to-owner → coalesce → admission
    /// control → simulate. `allow_forward` is false for peer-forwarded
    /// requests: the receiver always serves locally, so routing cannot
    /// loop no matter how peers' membership views disagree.
    fn submit(&self, spec: &ScenarioSpec, track: u64, allow_forward: bool) -> Response {
        self.pulse.scenarios.inc();
        if let Err(e) = spec.validate() {
            return Response::Error(e);
        }
        let key = crate::wire::scenario_key_bytes(spec);
        let t_cache = self.now_ns();
        let hit = self.cached(spec, &key);
        self.stage(track, "cache", t_cache, &self.pulse.cache_ns);
        if let Some(hit) = hit {
            return Response::Scenario(Box::new((*hit).clone()));
        }
        if allow_forward {
            if let Some(reply) = self.try_forward(spec, &key, track) {
                return Response::Scenario(Box::new((*reply).clone()));
            }
        }

        // Join an identical in-flight simulation, or register ourselves.
        enum Role {
            Leader(Arc<Inflight>),
            Waiter(Arc<Inflight>),
        }
        let role = {
            let mut inflight = lock(&self.inflight);
            if let Some(cell) = inflight.get(spec) {
                self.pulse.coalesced.inc();
                Role::Waiter(cell.clone())
            } else {
                let depth = self.pulse.queue_depth.add(1);
                if depth > self.config.capacity as i64 {
                    self.pulse.queue_depth.add(-1);
                    self.pulse.busy_rejections.inc();
                    return Response::Busy {
                        active: (depth - 1).max(0) as u32,
                        capacity: self.config.capacity as u32,
                    };
                }
                let cell = Arc::new(Inflight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                inflight.insert(spec.clone(), cell.clone());
                Role::Leader(cell)
            }
        };

        let result = match role {
            Role::Leader(cell) => {
                self.pulse.inflight.add(1);
                let t_sim = self.now_ns();
                let result = self.simulate(spec, &key, track);
                self.stage(track, "simulate", t_sim, &self.pulse.simulate_ns);
                lock(&self.inflight).remove(spec);
                self.pulse.inflight.add(-1);
                self.pulse.queue_depth.add(-1);
                *lock(&cell.done) = Some(result.clone());
                cell.cv.notify_all();
                result
            }
            Role::Waiter(cell) => {
                let t_wait = self.now_ns();
                let result = {
                    let mut done = lock(&cell.done);
                    loop {
                        if let Some(r) = done.as_ref() {
                            break r.clone();
                        }
                        done = cell.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                    }
                };
                self.stage(track, "coalesce", t_wait, &self.pulse.coalesce_ns);
                result
            }
        };
        match result {
            Ok(reply) => Response::Scenario(Box::new((*reply).clone())),
            Err(e) => Response::Error(e),
        }
    }

    /// Answer one inbound gossip: learn the sender and its view, reply
    /// with ours. An inbound heartbeat is direct evidence of life, so it
    /// also clears any suspicion of the sender.
    fn gossip(&self, from: &str, peers: &[String]) -> Response {
        let Some(fleet) = &self.fleet else {
            return Response::Error("fleet mode is not enabled on this server".into());
        };
        fleet.on_success(from);
        fleet.merge(peers);
        self.refresh_fleet_gauges();
        Response::Gossip {
            peers: fleet.view(),
        }
    }

    /// Sweep path: dedup identical cells, batch distinct misses onto the
    /// work-stealing pool, answer in request order.
    fn sweep(&self, specs: &[ScenarioSpec], track: u64) -> Response {
        self.pulse.scenarios.add(specs.len() as u64);

        // Dedup: identical cells share one slot in `work`.
        let mut order: Vec<usize> = Vec::with_capacity(specs.len());
        let mut work: Vec<&ScenarioSpec> = Vec::new();
        let mut seen: HashMap<&ScenarioSpec, usize> = HashMap::new();
        for spec in specs {
            let slot = *seen.entry(spec).or_insert_with(|| {
                work.push(spec);
                work.len() - 1
            });
            order.push(slot);
        }

        let depth = self.pulse.queue_depth.add(work.len() as i64);
        if depth > self.config.capacity as i64 {
            self.pulse.queue_depth.add(-(work.len() as i64));
            self.pulse.busy_rejections.inc();
            return Response::Busy {
                active: (depth - work.len() as i64).max(0) as u32,
                capacity: self.config.capacity as u32,
            };
        }

        let t_sweep = self.now_ns();
        let results: Vec<Result<Arc<ScenarioReply>, String>> =
            ghost_core::campaign::run_indexed_partial(
                work.len(),
                |i| work[i].label(),
                |i| {
                    let spec = work[i];
                    spec.validate()?;
                    let key = crate::wire::scenario_key_bytes(spec);
                    if let Some(hit) = self.cached(spec, &key) {
                        return Ok(hit);
                    }
                    self.simulate(spec, &key, track)
                },
                0,
                Duration::ZERO,
            )
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect();
        self.pulse.queue_depth.add(-(work.len() as i64));
        self.stage(track, "simulate", t_sweep, &self.pulse.simulate_ns);

        Response::Sweep(
            order
                .iter()
                .map(|&slot| match &results[slot] {
                    Ok(reply) => Ok((**reply).clone()),
                    Err(e) => Err(e.clone()),
                })
                .collect(),
        )
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and open the
    /// store if one is configured. When a fleet is configured, an empty
    /// advertise address is filled in from the bound socket.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let store = match &config.store_dir {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        let mut config = config;
        let fleet = match config.fleet.take() {
            Some(mut fc) => {
                if fc.advertise.is_empty() {
                    fc.advertise = listener.local_addr()?.to_string();
                }
                Some(Arc::new(Fleet::new(fc)))
            }
            None => None,
        };
        let pulse = ServePulse::new(config.capacity);
        let trace = TraceRing::new(config.trace_capacity);
        let shared = Arc::new(Shared {
            store,
            config,
            memory: Mutex::new(HashMap::new()),
            baselines: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            partition: AtomicBool::new(false),
            started: Instant::now(),
            pulse,
            trace,
            fleet,
        });
        shared.refresh_fleet_gauges();
        Ok(Self { listener, shared })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `Shutdown` request arrives, then drain in-flight work
    /// and return. Each connection gets its own handler thread; a fleet
    /// configuration additionally starts the gossip/anti-entropy loop.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let fleet_loop = if self.shared.fleet.is_some() {
            let shared = self.shared.clone();
            Some(std::thread::spawn(move || {
                crate::gossip::fleet_loop(&shared)
            }))
        } else {
            None
        };
        let idle = self.shared.config.idle_timeout_ms;
        loop {
            if self.shared.stopping() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.partitioned() {
                        // Chaos partition: reachable at TCP, silent above it
                        // (connection accepted, then dropped unanswered).
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if idle > 0 {
                        let t = Some(Duration::from_millis(idle));
                        let _ = stream.set_read_timeout(t);
                        let _ = stream.set_write_timeout(t);
                    }
                    let shared = self.shared.clone();
                    // Detached: the handler dies with its connection.
                    std::thread::spawn(move || handle_connection(stream, &shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if !self.shared.abort.load(Ordering::Relaxed) {
            // Graceful drain: wait for admitted work to finish. A hard
            // kill (chaos harness) skips this on purpose.
            while self.shared.pulse.queue_depth.get() > 0 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        if let Some(h) = fleet_loop {
            let _ = h.join();
        }
        Ok(())
    }

    /// Run on a background thread and return a handle for lifecycle
    /// control — the chaos harness's kill/partition/restart lever, and a
    /// convenient way to embed a daemon in tests.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = self.shared.clone();
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

/// Lifecycle control over a spawned [`Server`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    join: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Raise or drop the chaos partition: while up, inbound connections
    /// are accepted and silently dropped and outbound fleet traffic
    /// stops. The daemon itself keeps running.
    pub fn partition(&self, on: bool) {
        self.shared.partition.store(on, Ordering::Relaxed);
    }

    /// Whether the partition flag is currently up.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned()
    }

    /// A point-in-time counter snapshot (works even while partitioned —
    /// no socket involved).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Hard kill: stop accepting, skip the drain, return as soon as the
    /// accept loop notices (≤ one poll interval). In-flight handler
    /// threads die with their connections.
    pub fn kill(&mut self) {
        self.shared.abort.store(true, Ordering::Relaxed);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }

    /// Graceful stop: drain admitted work, then return.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }

    /// Whether the serving thread has exited.
    pub fn is_finished(&self) -> bool {
        self.join.as_ref().is_none_or(|h| h.is_finished())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Dispatch one connection: peek at the first bytes to tell the binary
/// protocol (frames start `"GS"`) from HTTP (`"GE"` of `GET`), then hand
/// off to the matching handler.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Wait until two bytes are peekable; a one-byte non-'G' prefix can go
    // straight to the frame reader, which will answer BadMagic. A client
    // that connects and then never speaks is reaped by the socket read
    // timeout instead of pinning this thread forever.
    let mut sniff = [0u8; 2];
    loop {
        match stream.peek(&mut sniff) {
            Ok(0) => return,
            Ok(1) if sniff[0] == b'G' => std::thread::sleep(Duration::from_millis(1)),
            Ok(1) => break,
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                shared.pulse.idle_reaped.inc();
                return;
            }
            Err(_) => return,
        }
    }
    if sniff[0] == b'G' && sniff[1] == b'E' {
        serve_http(stream, shared);
        return;
    }
    serve_frames(stream, shared);
}

/// Serve binary frames until the connection closes, a header-level error
/// occurs, or shutdown is acknowledged.
fn serve_frames(stream: TcpStream, shared: &Shared) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let (frame_version, payload) = match read_frame_versioned(&mut reader) {
            Ok(p) => p,
            Err(WireError::Closed) => return,
            Err(WireError::TimedOut) => {
                // A stalled or half-open client: reap quietly.
                shared.pulse.idle_reaped.inc();
                return;
            }
            Err(e) => {
                shared.pulse.decode_errors.inc();
                // Header-level: the stream is desynchronized. Best-effort
                // error reply, then drop the connection.
                let _ = write_frame(
                    &mut writer,
                    &encode_response(&Response::Error(e.to_string())),
                );
                return;
            }
        };
        if shared.partitioned() || shared.abort.load(Ordering::Relaxed) {
            // Chaos: a partitioned or killed peer goes silent mid-stream.
            return;
        }
        // The request sequence number doubles as the trace track.
        let track = shared.pulse.requests.inc();
        let t0 = shared.now_ns();
        let decoded = decode_request(&payload);
        shared.stage(track, "decode", t0, &shared.pulse.decode_ns);
        let (response, stop) = match decoded {
            Err(e) => {
                // Payload-level: typed error, connection survives.
                shared.pulse.decode_errors.inc();
                (Response::Error(format!("bad request: {e}")), false)
            }
            // Version gate: a fleet request smuggled into a too-old frame
            // is refused before any peer machinery can act on it.
            Ok(req) if req.required_version() > frame_version => {
                shared.pulse.decode_errors.inc();
                (
                    Response::Error(format!(
                        "request requires protocol v{}, frame is v{frame_version}",
                        req.required_version()
                    )),
                    false,
                )
            }
            Ok(Request::Submit(spec)) => (shared.submit(&spec, track, true), false),
            Ok(Request::Sweep(specs)) => (shared.sweep(&specs, track), false),
            Ok(Request::Stats) => (Response::Stats(Box::new(shared.stats())), false),
            Ok(Request::Trace) => {
                let spans = shared.trace.snapshot();
                (
                    Response::Trace(ghost_obs::chrome::stage_trace_json(&spans)),
                    false,
                )
            }
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::Relaxed);
                (Response::ShutdownAck, true)
            }
            // The sender already routed this to us: serve locally, never
            // re-forward (loop freedom).
            Ok(Request::Forward(spec)) => (shared.submit(&spec, track, false), false),
            Ok(Request::Gossip { from, peers }) => (shared.gossip(&from, &peers), false),
            Ok(Request::SyncDigest) => {
                let buckets = match &shared.store {
                    Some(store) => store.digest(),
                    None => vec![(0, 0); SYNC_BUCKETS],
                };
                (Response::SyncDigest { buckets }, false)
            }
            Ok(Request::SyncList { bucket }) => {
                if usize::from(bucket) >= SYNC_BUCKETS {
                    (
                        Response::Error(format!("bucket {bucket} out of range")),
                        false,
                    )
                } else {
                    let hashes = match &shared.store {
                        Some(store) => store.hashes_in_bucket(usize::from(bucket)),
                        None => Vec::new(),
                    };
                    (Response::SyncList { hashes }, false)
                }
            }
            Ok(Request::Fetch { key_hash }) => {
                let entry = shared.store.as_ref().and_then(|s| s.get_raw(key_hash));
                (Response::Entry(entry), false)
            }
        };
        // Service time is closed before the response is written, so a
        // Stats reply never includes its own request in the histogram.
        shared
            .pulse
            .request_ns
            .record(shared.now_ns().saturating_sub(t0));
        let t_enc = shared.now_ns();
        // Answer in the version the request arrived with: a v1 client
        // sees only v1 frames, whatever this server also speaks.
        let write_ok =
            write_frame_v(&mut writer, frame_version, &encode_response(&response)).is_ok();
        shared.stage(track, "encode", t_enc, &shared.pulse.encode_ns);
        if !write_ok {
            return;
        }
        if stop {
            let _ = writer.flush();
            return;
        }
    }
}

/// Answer one plain-HTTP request on the shared listener: `GET /metrics`
/// returns the ghost-pulse exposition; everything else is 404. The
/// response always closes the connection.
fn serve_http(mut stream: TcpStream, shared: &Shared) {
    const HEADER_LIMIT: usize = 8 * 1024;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.len() >= 4 && buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() > HEADER_LIMIT {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        shared.pulse.scrapes.inc();
        ("200 OK", shared.metrics_text())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let header = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::wire::read_frame;
    use ghost_core::scenario::InjectionSpec;
    use ghost_engine::time::MS;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            workload: WorkloadSpec::Bsp {
                steps: 3,
                compute: MS,
            },
            machine: ExperimentSpec::flat(4, seed),
            injection: InjectionSpec::uncoordinated(100.0, 0.01),
        }
    }

    fn start(config: ServeConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            server.run().unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn submit_stats_shutdown_roundtrip() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let a = client.submit(&spec(1)).unwrap();
        let b = client.submit(&spec(1)).unwrap();
        assert_eq!(a, b, "repeat must be served identically");
        let stats = client.stats().unwrap();
        assert_eq!(stats.scenarios, 2);
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.memory_hits, 1);
        // The stats request itself is timed after its snapshot, so only the
        // two submits are visible here.
        assert_eq!(stats.latency_count, 2);
        assert_eq!(stats.queue_depth, 0, "all work finished");
        assert_eq!(stats.inflight, 0);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn sweep_dedups_identical_cells() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let cells = vec![spec(1), spec(2), spec(1)];
        let replies = client.sweep(&cells).unwrap();
        assert_eq!(replies.len(), 3);
        assert_eq!(
            replies[0].as_ref().unwrap(),
            replies[2].as_ref().unwrap(),
            "duplicate cells share one result"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats.simulated, 2, "third cell coalesced in-batch");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn invalid_spec_is_a_typed_error_not_a_crash() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let mut bad = spec(1);
        bad.injection.net_ppm = 2_000_000;
        let err = client.submit(&bad).unwrap_err();
        assert!(matches!(err, crate::client::ClientError::Server(_)));
        // The connection survives a rejected spec.
        let ok = client.submit(&spec(1));
        assert!(ok.is_ok());
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn zero_capacity_answers_busy() {
        let (addr, handle) = start(ServeConfig {
            capacity: 0,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).unwrap();
        let err = client.submit(&spec(1)).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Busy { capacity: 0, .. }
        ));
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn malformed_payload_keeps_connection_alive() {
        let (addr, handle) = start(ServeConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        // Valid frame, garbage payload.
        write_frame(&mut stream, &[0xff, 0x01, 0x02]).unwrap();
        let resp = crate::wire::decode_response(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(resp, Response::Error(_)));
        // Same connection still answers a well-formed request.
        write_frame(&mut stream, &crate::wire::encode_request(&Request::Stats)).unwrap();
        let resp = crate::wire::decode_response(&read_frame(&mut stream).unwrap()).unwrap();
        match resp {
            Response::Stats(s) => assert_eq!(s.decode_errors, 1),
            other => panic!("expected stats, got {other:?}"),
        }
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn http_scrape_shares_the_listener_with_frames() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        client.submit(&spec(1)).unwrap();
        client.submit(&spec(1)).unwrap();

        let text = crate::client::scrape_metrics(addr).unwrap();
        let expo = ghost_obs::pulse::parse_exposition(&text).unwrap();
        assert_eq!(expo.get("ghost_serve_memory_hits_total"), Some(1.0));
        assert_eq!(expo.get("ghost_serve_simulated_total"), Some(1.0));
        assert_eq!(expo.get("ghost_serve_store_entries"), Some(-1.0));
        assert!(expo
            .get("ghost_serve_request_ns{quantile=\"0.99\"}")
            .is_some());

        // The binary connection is still alive after the HTTP one.
        assert!(client.stats().is_ok());
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn http_unknown_path_is_404() {
        let (addr, handle) = start(ServeConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 404"));
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn trace_request_exports_valid_chrome_json() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = Client::connect(addr).unwrap();
        client.submit(&spec(1)).unwrap();
        let json = client.server_trace().unwrap();
        let stats = ghost_obs::validate_trace(&json).unwrap();
        assert!(stats.complete >= 3, "decode, cache, simulate at least");
        for name in ["decode", "cache", "simulate", "encode"] {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn trace_capacity_zero_disables_tracing() {
        let (addr, handle) = start(ServeConfig {
            trace_capacity: 0,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(addr).unwrap();
        client.submit(&spec(1)).unwrap();
        let json = client.server_trace().unwrap();
        let stats = ghost_obs::validate_trace(&json).unwrap();
        assert_eq!(stats.events, 0, "ring disabled, trace is empty");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}

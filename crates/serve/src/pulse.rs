//! The daemon's ghost-pulse bundle: every counter, gauge, and latency
//! summary the server exports, registered once at bind time so the hot
//! path works with pre-resolved handles (one relaxed atomic op per
//! update) and never touches the registry lock.
//!
//! All metric names carry the `ghost_serve_` prefix; counters end in
//! `_total` and durations are nanosecond summaries rendered with
//! p50/p95/p99 quantile upper bounds.

use std::sync::Arc;
use std::time::Duration;

use ghost_obs::pulse::{Counter, Gauge, Histogram, Registry};

/// Pre-registered handles for the server's metrics.
pub(crate) struct ServePulse {
    registry: Arc<Registry>,
    /// Frames decoded on any connection (every request kind).
    pub requests: Counter,
    /// Scenario cells received (submits plus sweep cells).
    pub scenarios: Counter,
    /// Submissions answered from the in-memory reply cache.
    pub memory_hits: Counter,
    /// Submissions answered from the persistent store.
    pub disk_hits: Counter,
    /// Fresh simulations executed.
    pub simulated: Counter,
    /// Submissions that parked on an identical in-flight simulation.
    pub coalesced: Counter,
    /// Submissions rejected by admission control.
    pub busy_rejections: Counter,
    /// Malformed frames or payloads.
    pub decode_errors: Counter,
    /// Store write failures and undecodable on-disk entries.
    pub store_errors: Counter,
    /// `GET /metrics` scrapes answered.
    pub scrapes: Counter,
    /// Simulator events processed on behalf of fresh simulations. Labeled
    /// with the process-default queue backend (`queue="calendar"` /
    /// `queue="heap"`), resolved once at bind time.
    pub engine_events: Counter,
    /// Scenarios admitted and not yet finished (admission counter).
    pub queue_depth: Gauge,
    /// Leader simulations executing right now.
    pub inflight: Gauge,
    /// Entries in the persistent result store.
    pub store_entries: Gauge,
    /// Bytes resident in the persistent result store.
    pub store_bytes: Gauge,
    /// Configured store capacity in bytes (0 unbounded, -1 store off).
    pub store_capacity: Gauge,
    /// Entries evicted from the bounded store since open.
    pub store_evictions: Gauge,
    /// Connections currently registered with the event loop.
    pub open_conns: Gauge,
    /// Accept failures (fd exhaustion, peer aborts before accept).
    pub accept_errors: Counter,
    /// `SubmitBatch` frames received (pipelined sweeps).
    pub batches: Counter,
    /// Wall-clock uptime gauge (set at render time).
    uptime: Gauge,
    /// Whole-request service time, decode through dispatch.
    pub request_ns: Histogram,
    /// Request decode stage.
    pub decode_ns: Histogram,
    /// Memory + disk cache lookup stage.
    pub cache_ns: Histogram,
    /// Persistent-store write stage.
    pub store_ns: Histogram,
    /// Fresh-simulation stage.
    pub simulate_ns: Histogram,
    /// Time parked waiting on an identical in-flight simulation.
    pub coalesce_ns: Histogram,
    /// Response encode + write stage.
    pub encode_ns: Histogram,
    /// Connections reaped after stalling past the idle timeout.
    pub idle_reaped: Counter,
    /// Submissions forwarded to the owning peer (aggregate; per-peer
    /// cells share the name with a `peer` label).
    pub forward: Counter,
    /// Forwards that failed after bounded retry and degraded to local
    /// simulation.
    pub forward_fail: Counter,
    /// Peer suspicion *transitions* (aggregate; per-peer cells labeled).
    pub suspects_marked: Counter,
    /// Store entries pulled from peers by anti-entropy (aggregate;
    /// per-peer cells labeled).
    pub sync_pulls: Counter,
    /// Fetched entries rejected by verification (corrupt or inconsistent
    /// peer bytes that were *not* stored).
    pub sync_rejects: Counter,
    /// Gossip rounds completed.
    pub gossip_rounds: Counter,
    /// Known fleet peers (excluding self).
    pub fleet_peers: Gauge,
    /// Currently suspected peers.
    pub fleet_suspects: Gauge,
    /// Peer-forward stage (connect + remote service + reply decode).
    pub forward_ns: Histogram,
    /// Messages charged by the link-contention model across fresh
    /// simulations (contended scenarios only).
    pub net_messages: Counter,
    /// Messages the adaptive policy detoured onto non-minimal routes.
    pub net_nonminimal: Counter,
    /// Total simulated nanoseconds messages spent queued behind busy links.
    pub net_queued_ns: Counter,
}

impl ServePulse {
    /// Register the full metric set; `capacity` is exported as a constant
    /// gauge so scrapes can compute saturation without knowing the config.
    pub fn new(capacity: usize) -> Self {
        let r = Registry::new();
        let requests = r.counter("ghost_serve_requests_total", "Requests decoded (any kind)");
        let scenarios = r.counter(
            "ghost_serve_scenarios_total",
            "Scenario cells received (submits plus sweep cells)",
        );
        let memory_hits = r.counter(
            "ghost_serve_memory_hits_total",
            "Submissions answered from the in-memory reply cache",
        );
        let disk_hits = r.counter(
            "ghost_serve_disk_hits_total",
            "Submissions answered from the persistent result store",
        );
        let simulated = r.counter(
            "ghost_serve_simulated_total",
            "Fresh simulations executed (cache and coalesce misses)",
        );
        let coalesced = r.counter(
            "ghost_serve_coalesced_total",
            "Submissions that joined an identical in-flight simulation",
        );
        let busy_rejections = r.counter(
            "ghost_serve_busy_rejections_total",
            "Submissions rejected by admission control",
        );
        let decode_errors = r.counter(
            "ghost_serve_decode_errors_total",
            "Malformed frames or payloads received",
        );
        let store_errors = r.counter(
            "ghost_serve_store_errors_total",
            "Store write failures and undecodable on-disk entries",
        );
        let scrapes = r.counter("ghost_serve_scrapes_total", "GET /metrics scrapes answered");
        let engine_events = r.labeled_counter(
            "ghost_serve_engine_events_total",
            &[("queue", ghost_mpi::EngineKind::default_global().label())],
            "Simulator events processed by fresh simulations",
        );
        let queue_depth = r.gauge(
            "ghost_serve_queue_depth",
            "Scenarios admitted and not yet finished",
        );
        let inflight = r.gauge(
            "ghost_serve_inflight",
            "Leader simulations executing right now",
        );
        let capacity_g = r.gauge(
            "ghost_serve_capacity",
            "Admission-control cap on concurrently admitted scenarios",
        );
        capacity_g.set(capacity as i64);
        let store_entries = r.gauge(
            "ghost_serve_store_entries",
            "Entries in the persistent result store (-1 when persistence is off)",
        );
        let store_bytes = r.gauge(
            "ghost_serve_store_bytes",
            "Bytes resident in the persistent result store (-1 when persistence is off)",
        );
        let store_capacity = r.gauge(
            "ghost_serve_store_capacity_bytes",
            "Configured store capacity in bytes (0 unbounded, -1 when persistence is off)",
        );
        let store_evictions = r.gauge(
            "ghost_serve_store_evictions",
            "Entries evicted from the bounded store since open (-1 when persistence is off)",
        );
        let open_conns = r.gauge(
            "ghost_serve_connections",
            "Connections currently registered with the event loop",
        );
        let accept_errors = r.counter(
            "ghost_serve_accept_errors_total",
            "Accept failures (fd exhaustion backoffs, peer aborts before accept)",
        );
        let batches = r.counter(
            "ghost_serve_batches_total",
            "SubmitBatch frames received (pipelined sweeps)",
        );
        let uptime = r.gauge(
            "ghost_serve_uptime_seconds",
            "Seconds since the server bound",
        );
        let request_ns = r.summary(
            "ghost_serve_request_ns",
            "Whole-request service time in nanoseconds",
        );
        let decode_ns = r.summary("ghost_serve_decode_ns", "Request decode stage (ns)");
        let cache_ns = r.summary(
            "ghost_serve_cache_ns",
            "Memory and disk cache lookup stage (ns)",
        );
        let store_ns = r.summary("ghost_serve_store_ns", "Persistent-store write stage (ns)");
        let simulate_ns = r.summary("ghost_serve_simulate_ns", "Fresh-simulation stage (ns)");
        let coalesce_ns = r.summary(
            "ghost_serve_coalesce_ns",
            "Time parked on an identical in-flight simulation (ns)",
        );
        let encode_ns = r.summary(
            "ghost_serve_encode_ns",
            "Response encode and write stage (ns)",
        );
        let idle_reaped = r.counter(
            "ghost_serve_idle_reaped_total",
            "Connections reaped after stalling past the idle timeout",
        );
        let forward = r.counter(
            "ghost_fleet_forward_total",
            "Submissions forwarded to the owning peer",
        );
        let forward_fail = r.counter(
            "ghost_fleet_forward_fail_total",
            "Forwards that exhausted retries and degraded to local simulation",
        );
        let suspects_marked = r.counter(
            "ghost_fleet_suspect_total",
            "Peer suspicion transitions (consecutive-failure threshold crossed)",
        );
        let sync_pulls = r.counter(
            "ghost_fleet_sync_pull_total",
            "Store entries pulled from peers by anti-entropy",
        );
        let sync_rejects = r.counter(
            "ghost_fleet_sync_reject_total",
            "Fetched entries rejected by verification and not stored",
        );
        let gossip_rounds = r.counter(
            "ghost_fleet_gossip_rounds_total",
            "Gossip heartbeat rounds completed",
        );
        let fleet_peers = r.gauge(
            "ghost_fleet_peers",
            "Known fleet peers, excluding this daemon",
        );
        let fleet_suspects = r.gauge("ghost_fleet_suspects", "Currently suspected peers");
        let forward_ns = r.summary(
            "ghost_fleet_forward_ns",
            "Peer-forward stage: connect, remote service, reply decode (ns)",
        );
        let net_messages = r.counter(
            "ghost_sim_net_messages_total",
            "Messages charged by the link-contention model in fresh simulations",
        );
        let net_nonminimal = r.counter(
            "ghost_sim_net_nonminimal_total",
            "Messages detoured onto non-minimal routes by adaptive routing",
        );
        let net_queued_ns = r.counter(
            "ghost_sim_net_queued_ns_total",
            "Simulated nanoseconds messages spent queued behind busy links",
        );
        Self {
            registry: Arc::new(r),
            requests,
            scenarios,
            memory_hits,
            disk_hits,
            simulated,
            coalesced,
            busy_rejections,
            decode_errors,
            store_errors,
            scrapes,
            engine_events,
            queue_depth,
            inflight,
            store_entries,
            store_bytes,
            store_capacity,
            store_evictions,
            open_conns,
            accept_errors,
            batches,
            uptime,
            request_ns,
            decode_ns,
            cache_ns,
            store_ns,
            simulate_ns,
            coalesce_ns,
            encode_ns,
            idle_reaped,
            forward,
            forward_fail,
            suspects_marked,
            sync_pulls,
            sync_rejects,
            gossip_rounds,
            fleet_peers,
            fleet_suspects,
            forward_ns,
            net_messages,
            net_nonminimal,
            net_queued_ns,
        }
    }

    /// Fold one contended run's network statistics into the exposition:
    /// scalar counters plus the per-link utilization and queue-wait
    /// histograms (labeled counter cells, registered idempotently like the
    /// per-peer fleet cells).
    pub fn record_net(&self, stats: &ghost_obs::record::NetStats) {
        self.net_messages.add(stats.messages);
        self.net_nonminimal.add(stats.nonminimal);
        self.net_queued_ns.add(stats.queued_ns);
        for (i, &count) in stats.util_hist.iter().enumerate() {
            if count > 0 {
                let lo = (i * 10).to_string();
                self.registry
                    .labeled_counter(
                        "ghost_sim_link_util_bucket",
                        &[("pct_ge", lo.as_str())],
                        "Links by busy-time share of makespan (10% buckets)",
                    )
                    .add(count);
            }
        }
        for (i, &count) in stats.wait_hist.iter().enumerate() {
            if count > 0 {
                let lo = (if i == 0 { 0 } else { 1u64 << (i - 1) }).to_string();
                self.registry
                    .labeled_counter(
                        "ghost_sim_link_wait_bucket",
                        &[("ns_ge", lo.as_str())],
                        "Messages by per-message queuing delay (log2 ns buckets)",
                    )
                    .add(count);
            }
        }
    }

    /// Register the poll-backend info metric — a constant-1 cell whose
    /// `backend` label names the readiness backend driving the event
    /// loop. Called once at event-loop startup.
    pub fn set_poll_backend(&self, backend: &'static str) {
        self.registry
            .labeled_counter(
                "ghost_serve_poll_backend_info",
                &[("backend", backend)],
                "Readiness backend driving the event loop (constant 1)",
            )
            .inc();
    }

    /// A per-peer counter cell sharing `name` with the aggregate counter
    /// (same HELP/TYPE header, `peer="addr"` label). Registration is
    /// idempotent, so calling this per event is just a registry lookup.
    pub fn per_peer(&self, name: &str, peer: &str, help: &str) -> Counter {
        self.registry.labeled_counter(name, &[("peer", peer)], help)
    }

    /// Render the exposition text (refreshes the uptime gauge first).
    pub fn render(&self, uptime: Duration) -> String {
        self.uptime.set(uptime.as_secs() as i64);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_obs::pulse::parse_exposition;

    #[test]
    fn full_metric_set_renders_well_formed() {
        let p = ServePulse::new(64);
        p.requests.inc();
        p.request_ns.record(12_345);
        p.queue_depth.add(2);
        p.store_entries.set(-1);
        let text = p.render(Duration::from_secs(9));
        let expo = parse_exposition(&text).expect("server exposition must parse");
        assert_eq!(expo.get("ghost_serve_requests_total"), Some(1.0));
        assert_eq!(
            expo.get("ghost_serve_engine_events_total{queue=\"calendar\"}"),
            Some(0.0),
            "engine events must carry the default queue-backend label"
        );
        assert_eq!(expo.get("ghost_serve_capacity"), Some(64.0));
        assert_eq!(expo.get("ghost_serve_uptime_seconds"), Some(9.0));
        assert_eq!(expo.get("ghost_serve_queue_depth"), Some(2.0));
        assert_eq!(expo.get("ghost_serve_store_entries"), Some(-1.0));
        assert_eq!(expo.get("ghost_serve_request_ns_count"), Some(1.0));
        assert!(expo
            .get("ghost_serve_request_ns{quantile=\"0.99\"}")
            .is_some());
    }

    #[test]
    fn net_stats_render_as_labeled_histograms() {
        let p = ServePulse::new(4);
        let mut stats = ghost_obs::record::NetStats {
            links: 6,
            messages: 10,
            nonminimal: 3,
            queued_ns: 12_500,
            busy_peak_ns: 900,
            ..ghost_obs::record::NetStats::default()
        };
        stats.util_hist[0] = 4;
        stats.util_hist[9] = 2;
        stats.wait_hist[0] = 7;
        stats.wait_hist[11] = 3;
        p.record_net(&stats);
        p.record_net(&stats); // counters accumulate across runs
        let text = p.render(Duration::from_secs(1));
        let expo = parse_exposition(&text).expect("net exposition must parse");
        assert_eq!(expo.get("ghost_sim_net_messages_total"), Some(20.0));
        assert_eq!(expo.get("ghost_sim_net_nonminimal_total"), Some(6.0));
        assert_eq!(expo.get("ghost_sim_net_queued_ns_total"), Some(25_000.0));
        assert_eq!(
            expo.get("ghost_sim_link_util_bucket{pct_ge=\"90\"}"),
            Some(4.0)
        );
        assert_eq!(
            expo.get("ghost_sim_link_wait_bucket{ns_ge=\"1024\"}"),
            Some(6.0)
        );
        assert_eq!(
            expo.get("ghost_sim_link_wait_bucket{ns_ge=\"0\"}"),
            Some(14.0)
        );
    }
}

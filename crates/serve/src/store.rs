//! Persistent content-addressed result store with an optional size bound.
//!
//! One file per scenario, named by the FNV-64 of the spec's canonical key
//! bytes: `gs-{hash:016x}.res`. Each file embeds the *full* key and a
//! checksum, so a filename collision or a corrupt/truncated file is
//! detected on read and treated as a miss — the store never panics and
//! never serves wrong bytes. Writes go through a temp file plus an atomic
//! rename so a crash mid-write leaves either the old file or no file,
//! never a torn one; orphaned temp files from a crashed process are
//! compacted away the next time the store opens.
//!
//! ## The store is a cache
//!
//! Results are deterministic recomputations, so the store owes nobody
//! durability: when opened with a byte capacity ([`ResultStore::open_bounded`]),
//! it evicts least-recently-*touched* entries (LRU by access, not write)
//! to stay under the cap. An evicted key is a clean miss — the server
//! re-simulates and gets byte-identical bytes back. The in-memory index
//! (sizes, recency ticks, occupancy) makes `len()`/`bytes()` O(1), which
//! is what lets the `/metrics` scrape run on the event-loop thread.
//!
//! File layout (all little-endian):
//!
//! ```text
//! magic   u32  "GSST"
//! version u16
//! key_len u32
//! val_len u32
//! key     [u8; key_len]      canonical scenario encoding
//! value   [u8; val_len]      canonical ScenarioReply encoding
//! check   u64                fnv64(key ++ value)
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use ghost_core::scenario::{mix64, shard_of};

use crate::wire::{content_hash, SyncBucket, SYNC_BUCKETS};

/// Store file magic: `"GSST"` little-endian.
pub const STORE_MAGIC: u32 = u32::from_le_bytes(*b"GSST");
/// Store format version.
pub const STORE_VERSION: u16 = 1;
/// Cap on either section of a store file (matches the wire payload cap).
const MAX_SECTION: u32 = 16 * 1024 * 1024;

/// One indexed entry: its on-disk size and its recency tick.
struct Entry {
    bytes: u64,
    tick: u64,
}

/// The in-memory picture of the directory: what exists, how big it is,
/// and in what recency order. `by_tick` inverts `entries` for O(log n)
/// victim selection.
struct Index {
    entries: HashMap<u64, Entry>,
    by_tick: BTreeMap<u64, u64>,
    total: u64,
    clock: u64,
    evictions: u64,
    compacted: u64,
}

impl Index {
    fn touch(&mut self, hash: u64) {
        self.clock += 1;
        let tick = self.clock;
        if let Some(e) = self.entries.get_mut(&hash) {
            self.by_tick.remove(&e.tick);
            e.tick = tick;
            self.by_tick.insert(tick, hash);
        }
    }

    /// Insert or replace `hash`, returning it freshest. Accounts bytes.
    fn upsert(&mut self, hash: u64, bytes: u64) {
        if let Some(old) = self.entries.remove(&hash) {
            self.by_tick.remove(&old.tick);
            self.total = self.total.saturating_sub(old.bytes);
        }
        self.clock += 1;
        let tick = self.clock;
        self.entries.insert(hash, Entry { bytes, tick });
        self.by_tick.insert(tick, hash);
        self.total += bytes;
    }

    fn remove(&mut self, hash: u64) {
        if let Some(old) = self.entries.remove(&hash) {
            self.by_tick.remove(&old.tick);
            self.total = self.total.saturating_sub(old.bytes);
        }
    }

    /// Pop the least-recently-touched entry, if any.
    fn pop_lru(&mut self) -> Option<u64> {
        let (&tick, &hash) = self.by_tick.iter().next()?;
        self.by_tick.remove(&tick);
        if let Some(old) = self.entries.remove(&hash) {
            self.total = self.total.saturating_sub(old.bytes);
        }
        Some(hash)
    }
}

/// An on-disk result cache rooted at one directory. Clones share one
/// index (and therefore one eviction clock).
#[derive(Clone)]
pub struct ResultStore {
    dir: PathBuf,
    capacity: u64,
    state: Arc<Mutex<Index>>,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

fn lock(m: &Mutex<Index>) -> std::sync::MutexGuard<'_, Index> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Parse the key hash out of a `gs-{16 hex}.res` filename.
fn hash_from_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("gs-")?.strip_suffix(".res")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

impl ResultStore {
    /// Open (creating if needed) an unbounded store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_bounded(dir, 0)
    }

    /// Open a store with a byte capacity (`0` = unbounded). Startup walks
    /// the directory once: orphaned temp files from a crashed writer are
    /// deleted (compaction), result files are indexed by size and
    /// modification time (oldest = coldest), and if the directory already
    /// exceeds the capacity it is evicted down before serving.
    pub fn open_bounded(dir: impl Into<PathBuf>, capacity: u64) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = Index {
            entries: HashMap::new(),
            by_tick: BTreeMap::new(),
            total: 0,
            clock: 0,
            evictions: 0,
            compacted: 0,
        };
        let mut found: Vec<(u64, u64, SystemTime)> = Vec::new();
        for entry in fs::read_dir(&dir)?.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("gs-") && name.contains(".tmp.") {
                // A crashed writer's leftovers: never referenced again.
                if fs::remove_file(entry.path()).is_ok() {
                    index.compacted += 1;
                }
                continue;
            }
            let Some(hash) = hash_from_name(name) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((hash, meta.len(), mtime));
        }
        found.sort_by_key(|&(_, _, mtime)| mtime);
        for (hash, bytes, _) in found {
            index.upsert(hash, bytes);
        }
        let store = Self {
            dir,
            capacity,
            state: Arc::new(Mutex::new(index)),
        };
        store.evict_over_capacity();
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured capacity in bytes (0 = unbounded).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// The file that would hold `key`'s result.
    pub fn path_for(&self, key: &[u8]) -> PathBuf {
        self.dir.join(format!("gs-{:016x}.res", content_hash(key)))
    }

    fn path_for_hash(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("gs-{hash:016x}.res"))
    }

    /// Look up `key`. Any verification failure — missing file, bad magic or
    /// version, implausible lengths, checksum mismatch, or a different key
    /// hashed to the same filename — is a miss (`None`), never an error.
    /// A hit refreshes the entry's LRU tick.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let hash = content_hash(key);
        let bytes = match fs::read(self.path_for(key)) {
            Ok(b) => b,
            Err(_) => {
                // Evicted, never written, or lost: make the index agree.
                lock(&self.state).remove(hash);
                return None;
            }
        };
        let value = decode_store_file(&bytes, key)?;
        let mut idx = lock(&self.state);
        if idx.entries.contains_key(&hash) {
            idx.touch(hash);
        } else {
            // A file another handle wrote (or a raced eviction re-read):
            // adopt it so occupancy stays truthful.
            idx.upsert(hash, bytes.len() as u64);
        }
        drop(idx);
        self.evict_over_capacity();
        Some(value)
    }

    /// Persist `value` under `key`, atomically, then evict down to the
    /// capacity. The just-written entry is the freshest, so it is evicted
    /// only if it alone exceeds the whole capacity. A failed write is
    /// reported but leaves no partial file behind.
    pub fn put(&self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        if key.len() as u64 > MAX_SECTION as u64 || value.len() as u64 > MAX_SECTION as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "store entry too large",
            ));
        }
        let mut bytes = Vec::with_capacity(22 + key.len() + value.len());
        bytes.extend_from_slice(&STORE_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(key.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&(value.len() as u32).to_le_bytes());
        bytes.extend_from_slice(key);
        bytes.extend_from_slice(value);
        let mut checked = Vec::with_capacity(key.len() + value.len());
        checked.extend_from_slice(key);
        checked.extend_from_slice(value);
        bytes.extend_from_slice(&content_hash(&checked).to_le_bytes());

        let hash = content_hash(key);
        let final_path = self.path_for(key);
        let tmp_path = self
            .dir
            .join(format!("gs-{hash:016x}.tmp.{}", std::process::id()));
        let mut f = fs::File::create(&tmp_path)?;
        let written = f.write_all(&bytes).and_then(|()| f.sync_all());
        drop(f);
        match written.and_then(|()| fs::rename(&tmp_path, &final_path)) {
            Ok(()) => {
                lock(&self.state).upsert(hash, bytes.len() as u64);
                self.evict_over_capacity();
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }

    /// Evict least-recently-touched entries until occupancy fits the
    /// capacity. Victims leave the index under the lock (so concurrent
    /// accounting never double-counts); their files are deleted after.
    fn evict_over_capacity(&self) {
        if self.capacity == 0 {
            return;
        }
        let mut victims: Vec<u64> = Vec::new();
        {
            let mut idx = lock(&self.state);
            while idx.total > self.capacity {
                match idx.pop_lru() {
                    Some(hash) => {
                        idx.evictions += 1;
                        victims.push(hash);
                    }
                    None => break,
                }
            }
        }
        for hash in victims {
            let _ = fs::remove_file(self.path_for_hash(hash));
        }
    }

    /// How many result files the store currently holds (O(1): the index).
    pub fn len(&self) -> usize {
        lock(&self.state).entries.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident (O(1): the index).
    pub fn bytes(&self) -> u64 {
        lock(&self.state).total
    }

    /// Entries evicted since this store (or a clone sharing its index)
    /// was opened.
    pub fn evictions(&self) -> u64 {
        lock(&self.state).evictions
    }

    /// Orphaned temp files removed by startup compaction.
    pub fn compacted(&self) -> u64 {
        lock(&self.state).compacted
    }

    /// Enumerate every *verified* entry as `(key_hash, check)` pairs.
    ///
    /// The key hash is recomputed from the embedded key bytes — the
    /// filename is never trusted — and files that fail structural or
    /// checksum verification are skipped, so a corrupt store contributes
    /// nothing to a digest rather than poisoning anti-entropy.
    pub fn scan(&self) -> Vec<(u64, u64)> {
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in rd.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with("gs-") || !name.ends_with(".res") {
                continue;
            }
            let Ok(bytes) = fs::read(entry.path()) else {
                continue;
            };
            if let Some((key, _value, check)) = parse_store_file(&bytes) {
                out.push((content_hash(key), check));
            }
        }
        out
    }

    /// Fetch one verified entry by its key hash: `(key bytes, value
    /// bytes)`. Any defect — missing file, corruption, or a file whose
    /// embedded key does not hash to `key_hash` — is a clean `None`.
    pub fn get_raw(&self, key_hash: u64) -> Option<(Vec<u8>, Vec<u8>)> {
        let bytes = fs::read(self.path_for_hash(key_hash)).ok()?;
        let (key, value, _check) = parse_store_file(&bytes)?;
        if content_hash(key) != key_hash {
            return None;
        }
        Some((key.to_vec(), value.to_vec()))
    }

    /// The anti-entropy digest: [`SYNC_BUCKETS`] buckets of `(count, xor)`
    /// where each verified entry contributes an order-independent mixed
    /// hash of its key hash and checksum. Two stores holding byte-identical
    /// entry sets produce identical digests; any divergence flips at least
    /// one bucket.
    pub fn digest(&self) -> Vec<SyncBucket> {
        let mut buckets = vec![(0u64, 0u64); SYNC_BUCKETS];
        for (hash, check) in self.scan() {
            let b = shard_of(hash, SYNC_BUCKETS);
            buckets[b].0 += 1;
            buckets[b].1 ^= mix64(hash ^ mix64(check));
        }
        buckets
    }

    /// Every verified key hash whose digest bucket is `bucket`.
    pub fn hashes_in_bucket(&self, bucket: usize) -> Vec<u64> {
        self.scan()
            .into_iter()
            .filter(|&(hash, _)| shard_of(hash, SYNC_BUCKETS) == bucket)
            .map(|(hash, _)| hash)
            .collect()
    }
}

/// Structural verification: magic, version, plausible lengths, exact file
/// size, checksum. Returns the embedded `(key, value, check)` or `None` on
/// any defect. Callers decide what the key must match.
fn parse_store_file(bytes: &[u8]) -> Option<(&[u8], &[u8], u64)> {
    if bytes.len() < 14 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if magic != STORE_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().ok()?);
    if version != STORE_VERSION {
        return None;
    }
    let key_len = u32::from_le_bytes(bytes[6..10].try_into().ok()?) as usize;
    let val_len = u32::from_le_bytes(bytes[10..14].try_into().ok()?) as usize;
    if key_len as u64 > MAX_SECTION as u64 || val_len as u64 > MAX_SECTION as u64 {
        return None;
    }
    let expected = 14usize
        .checked_add(key_len)?
        .checked_add(val_len)?
        .checked_add(8)?;
    if bytes.len() != expected {
        return None;
    }
    let key = &bytes[14..14 + key_len];
    let value = &bytes[14 + key_len..14 + key_len + val_len];
    let check = u64::from_le_bytes(bytes[expected - 8..].try_into().ok()?);
    let mut checked = Vec::with_capacity(key_len + val_len);
    checked.extend_from_slice(key);
    checked.extend_from_slice(value);
    if content_hash(&checked) != check {
        return None;
    }
    Some((key, value, check))
}

/// Verify and extract the value section, or `None` on any defect.
fn decode_store_file(bytes: &[u8], want_key: &[u8]) -> Option<Vec<u8>> {
    let (key, value, _check) = parse_store_file(bytes)?;
    // Full-key byte equality: FNV filename collisions resolve to a miss.
    if key != want_key {
        return None;
    }
    Some(value.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ghost-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.put(b"key-a", b"value-a").unwrap();
        assert_eq!(store.get(b"key-a").unwrap(), b"value-a");
        assert_eq!(store.get(b"key-b"), None);
        assert_eq!(store.len(), 1);

        // A fresh handle over the same directory (warm restart) still hits.
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.get(b"key-a").unwrap(), b"value-a");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_value() {
        let dir = tmpdir("overwrite");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"k", b"old").unwrap();
        store.put(b"k", b"new").unwrap();
        assert_eq!(store.get(b"k").unwrap(), b"new");
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_a_miss() {
        let dir = tmpdir("truncated");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"k", b"some value bytes").unwrap();
        let path = store.path_for(b"k");
        let full = fs::read(&path).unwrap();
        for cut in [0, 5, 13, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(store.get(b"k"), None, "cut at {cut} must be a miss");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_is_a_miss() {
        let dir = tmpdir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"k", b"payload").unwrap();
        let path = store.path_for(b"k");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get(b"k"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_and_digest_agree_across_stores() {
        let a = ResultStore::open(tmpdir("digest-a")).unwrap();
        let b = ResultStore::open(tmpdir("digest-b")).unwrap();
        for i in 0..20u8 {
            a.put(&[i], &[i, i]).unwrap();
            b.put(&[i], &[i, i]).unwrap();
        }
        assert_eq!(a.scan().len(), 20);
        assert_eq!(
            a.digest(),
            b.digest(),
            "identical stores, identical digests"
        );
        let total: usize = (0..SYNC_BUCKETS).map(|k| a.hashes_in_bucket(k).len()).sum();
        assert_eq!(total, 20, "every entry lands in exactly one bucket");

        // One extra entry flips exactly its own bucket.
        b.put(b"extra", b"entry").unwrap();
        let (da, db) = (a.digest(), b.digest());
        assert_ne!(da, db);
        assert_eq!(da.iter().zip(&db).filter(|(x, y)| x != y).count(), 1);
        let _ = fs::remove_dir_all(a.dir());
        let _ = fs::remove_dir_all(b.dir());
    }

    #[test]
    fn get_raw_verifies_hash_and_corruption() {
        let dir = tmpdir("get-raw");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"key-a", b"value-a").unwrap();
        let hash = content_hash(b"key-a");
        assert_eq!(
            store.get_raw(hash).unwrap(),
            (b"key-a".to_vec(), b"value-a".to_vec())
        );
        assert_eq!(store.get_raw(hash ^ 1), None, "absent hash is a miss");

        // A file renamed under the wrong hash fails the key-hash check.
        let stored = fs::read(store.path_for(b"key-a")).unwrap();
        let wrong = dir.join(format!("gs-{:016x}.res", hash ^ 1));
        fs::write(&wrong, &stored).unwrap();
        assert_eq!(store.get_raw(hash ^ 1), None);
        // scan() recomputes hashes from embedded keys, so the mis-named
        // copy still reports the true hash — clean it up before the
        // corruption check below.
        fs::remove_file(&wrong).unwrap();

        // Corruption is a miss and drops out of scan entirely.
        let mut bytes = stored.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(store.path_for(b"key-a"), &bytes).unwrap();
        assert_eq!(store.get_raw(hash), None);
        assert!(store.scan().iter().all(|&(h, _)| h != hash));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn filename_collision_resolves_to_miss() {
        let dir = tmpdir("collision");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"key-a", b"value-a").unwrap();
        // Simulate another key hashing to the same file: rewrite the file
        // under key-a's name but ask for a key whose bytes differ.
        let stored = fs::read(store.path_for(b"key-a")).unwrap();
        fs::write(store.path_for(b"imposter"), &stored).unwrap();
        assert_eq!(store.get(b"imposter"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    /// On-disk size of one entry with a 1-byte key and `val` value bytes.
    fn entry_size(val: usize) -> u64 {
        (14 + 1 + val + 8) as u64
    }

    #[test]
    fn bounded_store_never_exceeds_capacity() {
        let dir = tmpdir("bounded");
        // Room for exactly three 100-byte-value entries.
        let cap = 3 * entry_size(100);
        let store = ResultStore::open_bounded(&dir, cap).unwrap();
        for i in 0..10u8 {
            store.put(&[i], &[i; 100]).unwrap();
            assert!(
                store.bytes() <= cap,
                "after put {i}: {} > {cap}",
                store.bytes()
            );
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.evictions(), 7);
        // The three newest survive; the oldest seven are clean misses.
        for i in 0..7u8 {
            assert_eq!(store.get(&[i]), None);
        }
        for i in 7..10u8 {
            assert_eq!(store.get(&[i]).unwrap(), vec![i; 100]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_lru_by_access_not_write_order() {
        let dir = tmpdir("lru");
        let cap = 2 * entry_size(10);
        let store = ResultStore::open_bounded(&dir, cap).unwrap();
        store.put(&[1], &[9; 10]).unwrap();
        store.put(&[2], &[9; 10]).unwrap();
        // Touch the older entry, making entry 2 the coldest.
        assert!(store.get(&[1]).is_some());
        store.put(&[3], &[9; 10]).unwrap();
        assert!(store.get(&[2]).is_none(), "coldest entry evicted");
        assert!(store.get(&[1]).is_some(), "touched entry survives");
        assert!(store.get(&[3]).is_some(), "fresh entry survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_compacts_orphaned_tmp_files_and_enforces_capacity() {
        let dir = tmpdir("compact");
        let store = ResultStore::open(&dir).unwrap();
        for i in 0..4u8 {
            store.put(&[i], &[7; 50]).unwrap();
        }
        // A crashed writer's leftover.
        fs::write(dir.join("gs-00000000000000aa.tmp.999"), b"torn").unwrap();
        drop(store);

        let cap = 2 * entry_size(50);
        let reopened = ResultStore::open_bounded(&dir, cap).unwrap();
        assert_eq!(reopened.compacted(), 1, "orphan removed at open");
        assert!(!dir.join("gs-00000000000000aa.tmp.999").exists());
        assert!(reopened.bytes() <= cap, "pre-existing excess evicted");
        assert_eq!(reopened.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_write_is_adopted_on_read() {
        let dir = tmpdir("adopt");
        let a = ResultStore::open(&dir).unwrap();
        let b = ResultStore::open(&dir).unwrap();
        a.put(b"k", b"v").unwrap();
        // b's index predates the write; the read itself repairs it.
        assert_eq!(b.get(b"k").unwrap(), b"v");
        assert_eq!(b.len(), 1);
        assert_eq!(b.bytes(), a.bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_drops_out_of_the_index() {
        let dir = tmpdir("drop");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"k", b"v").unwrap();
        fs::remove_file(store.path_for(b"k")).unwrap();
        assert_eq!(store.get(b"k"), None);
        assert_eq!(store.len(), 0, "index agrees with the directory");
        assert_eq!(store.bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Persistent content-addressed result store.
//!
//! One file per scenario, named by the FNV-64 of the spec's canonical key
//! bytes: `gs-{hash:016x}.res`. Each file embeds the *full* key and a
//! checksum, so a filename collision or a corrupt/truncated file is
//! detected on read and treated as a miss — the store never panics and
//! never serves wrong bytes. Writes go through a temp file plus an atomic
//! rename so a crash mid-write leaves either the old file or no file,
//! never a torn one.
//!
//! File layout (all little-endian):
//!
//! ```text
//! magic   u32  "GSST"
//! version u16
//! key_len u32
//! val_len u32
//! key     [u8; key_len]      canonical scenario encoding
//! value   [u8; val_len]      canonical ScenarioReply encoding
//! check   u64                fnv64(key ++ value)
//! ```

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ghost_core::scenario::{mix64, shard_of};

use crate::wire::{content_hash, SyncBucket, SYNC_BUCKETS};

/// Store file magic: `"GSST"` little-endian.
pub const STORE_MAGIC: u32 = u32::from_le_bytes(*b"GSST");
/// Store format version.
pub const STORE_VERSION: u16 = 1;
/// Cap on either section of a store file (matches the wire payload cap).
const MAX_SECTION: u32 = 16 * 1024 * 1024;

/// An on-disk result cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file that would hold `key`'s result.
    pub fn path_for(&self, key: &[u8]) -> PathBuf {
        self.dir.join(format!("gs-{:016x}.res", content_hash(key)))
    }

    /// Look up `key`. Any verification failure — missing file, bad magic or
    /// version, implausible lengths, checksum mismatch, or a different key
    /// hashed to the same filename — is a miss (`None`), never an error.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let bytes = fs::read(self.path_for(key)).ok()?;
        decode_store_file(&bytes, key)
    }

    /// Persist `value` under `key`, atomically. A failed write is reported
    /// but leaves no partial file behind.
    pub fn put(&self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        if key.len() as u64 > MAX_SECTION as u64 || value.len() as u64 > MAX_SECTION as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "store entry too large",
            ));
        }
        let mut bytes = Vec::with_capacity(22 + key.len() + value.len());
        bytes.extend_from_slice(&STORE_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(key.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&(value.len() as u32).to_le_bytes());
        bytes.extend_from_slice(key);
        bytes.extend_from_slice(value);
        let mut checked = Vec::with_capacity(key.len() + value.len());
        checked.extend_from_slice(key);
        checked.extend_from_slice(value);
        bytes.extend_from_slice(&content_hash(&checked).to_le_bytes());

        let final_path = self.path_for(key);
        let tmp_path = self.dir.join(format!(
            "gs-{:016x}.tmp.{}",
            content_hash(key),
            std::process::id()
        ));
        let mut f = fs::File::create(&tmp_path)?;
        let written = f.write_all(&bytes).and_then(|()| f.sync_all());
        drop(f);
        match written.and_then(|()| fs::rename(&tmp_path, &final_path)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }

    /// How many result files the store currently holds.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.starts_with("gs-") && n.ends_with(".res"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate every *verified* entry as `(key_hash, check)` pairs.
    ///
    /// The key hash is recomputed from the embedded key bytes — the
    /// filename is never trusted — and files that fail structural or
    /// checksum verification are skipped, so a corrupt store contributes
    /// nothing to a digest rather than poisoning anti-entropy.
    pub fn scan(&self) -> Vec<(u64, u64)> {
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in rd.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with("gs-") || !name.ends_with(".res") {
                continue;
            }
            let Ok(bytes) = fs::read(entry.path()) else {
                continue;
            };
            if let Some((key, _value, check)) = parse_store_file(&bytes) {
                out.push((content_hash(key), check));
            }
        }
        out
    }

    /// Fetch one verified entry by its key hash: `(key bytes, value
    /// bytes)`. Any defect — missing file, corruption, or a file whose
    /// embedded key does not hash to `key_hash` — is a clean `None`.
    pub fn get_raw(&self, key_hash: u64) -> Option<(Vec<u8>, Vec<u8>)> {
        let bytes = fs::read(self.dir.join(format!("gs-{key_hash:016x}.res"))).ok()?;
        let (key, value, _check) = parse_store_file(&bytes)?;
        if content_hash(key) != key_hash {
            return None;
        }
        Some((key.to_vec(), value.to_vec()))
    }

    /// The anti-entropy digest: [`SYNC_BUCKETS`] buckets of `(count, xor)`
    /// where each verified entry contributes an order-independent mixed
    /// hash of its key hash and checksum. Two stores holding byte-identical
    /// entry sets produce identical digests; any divergence flips at least
    /// one bucket.
    pub fn digest(&self) -> Vec<SyncBucket> {
        let mut buckets = vec![(0u64, 0u64); SYNC_BUCKETS];
        for (hash, check) in self.scan() {
            let b = shard_of(hash, SYNC_BUCKETS);
            buckets[b].0 += 1;
            buckets[b].1 ^= mix64(hash ^ mix64(check));
        }
        buckets
    }

    /// Every verified key hash whose digest bucket is `bucket`.
    pub fn hashes_in_bucket(&self, bucket: usize) -> Vec<u64> {
        self.scan()
            .into_iter()
            .filter(|&(hash, _)| shard_of(hash, SYNC_BUCKETS) == bucket)
            .map(|(hash, _)| hash)
            .collect()
    }
}

/// Structural verification: magic, version, plausible lengths, exact file
/// size, checksum. Returns the embedded `(key, value, check)` or `None` on
/// any defect. Callers decide what the key must match.
fn parse_store_file(bytes: &[u8]) -> Option<(&[u8], &[u8], u64)> {
    if bytes.len() < 14 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if magic != STORE_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().ok()?);
    if version != STORE_VERSION {
        return None;
    }
    let key_len = u32::from_le_bytes(bytes[6..10].try_into().ok()?) as usize;
    let val_len = u32::from_le_bytes(bytes[10..14].try_into().ok()?) as usize;
    if key_len as u64 > MAX_SECTION as u64 || val_len as u64 > MAX_SECTION as u64 {
        return None;
    }
    let expected = 14usize
        .checked_add(key_len)?
        .checked_add(val_len)?
        .checked_add(8)?;
    if bytes.len() != expected {
        return None;
    }
    let key = &bytes[14..14 + key_len];
    let value = &bytes[14 + key_len..14 + key_len + val_len];
    let check = u64::from_le_bytes(bytes[expected - 8..].try_into().ok()?);
    let mut checked = Vec::with_capacity(key_len + val_len);
    checked.extend_from_slice(key);
    checked.extend_from_slice(value);
    if content_hash(&checked) != check {
        return None;
    }
    Some((key, value, check))
}

/// Verify and extract the value section, or `None` on any defect.
fn decode_store_file(bytes: &[u8], want_key: &[u8]) -> Option<Vec<u8>> {
    let (key, value, _check) = parse_store_file(bytes)?;
    // Full-key byte equality: FNV filename collisions resolve to a miss.
    if key != want_key {
        return None;
    }
    Some(value.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ghost-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.put(b"key-a", b"value-a").unwrap();
        assert_eq!(store.get(b"key-a").unwrap(), b"value-a");
        assert_eq!(store.get(b"key-b"), None);
        assert_eq!(store.len(), 1);

        // A fresh handle over the same directory (warm restart) still hits.
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.get(b"key-a").unwrap(), b"value-a");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_value() {
        let dir = tmpdir("overwrite");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"k", b"old").unwrap();
        store.put(b"k", b"new").unwrap();
        assert_eq!(store.get(b"k").unwrap(), b"new");
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_a_miss() {
        let dir = tmpdir("truncated");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"k", b"some value bytes").unwrap();
        let path = store.path_for(b"k");
        let full = fs::read(&path).unwrap();
        for cut in [0, 5, 13, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(store.get(b"k"), None, "cut at {cut} must be a miss");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_is_a_miss() {
        let dir = tmpdir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"k", b"payload").unwrap();
        let path = store.path_for(b"k");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get(b"k"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_and_digest_agree_across_stores() {
        let a = ResultStore::open(tmpdir("digest-a")).unwrap();
        let b = ResultStore::open(tmpdir("digest-b")).unwrap();
        for i in 0..20u8 {
            a.put(&[i], &[i, i]).unwrap();
            b.put(&[i], &[i, i]).unwrap();
        }
        assert_eq!(a.scan().len(), 20);
        assert_eq!(
            a.digest(),
            b.digest(),
            "identical stores, identical digests"
        );
        let total: usize = (0..SYNC_BUCKETS).map(|k| a.hashes_in_bucket(k).len()).sum();
        assert_eq!(total, 20, "every entry lands in exactly one bucket");

        // One extra entry flips exactly its own bucket.
        b.put(b"extra", b"entry").unwrap();
        let (da, db) = (a.digest(), b.digest());
        assert_ne!(da, db);
        assert_eq!(da.iter().zip(&db).filter(|(x, y)| x != y).count(), 1);
        let _ = fs::remove_dir_all(a.dir());
        let _ = fs::remove_dir_all(b.dir());
    }

    #[test]
    fn get_raw_verifies_hash_and_corruption() {
        let dir = tmpdir("get-raw");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"key-a", b"value-a").unwrap();
        let hash = content_hash(b"key-a");
        assert_eq!(
            store.get_raw(hash).unwrap(),
            (b"key-a".to_vec(), b"value-a".to_vec())
        );
        assert_eq!(store.get_raw(hash ^ 1), None, "absent hash is a miss");

        // A file renamed under the wrong hash fails the key-hash check.
        let stored = fs::read(store.path_for(b"key-a")).unwrap();
        let wrong = dir.join(format!("gs-{:016x}.res", hash ^ 1));
        fs::write(&wrong, &stored).unwrap();
        assert_eq!(store.get_raw(hash ^ 1), None);
        // scan() recomputes hashes from embedded keys, so the mis-named
        // copy still reports the true hash — clean it up before the
        // corruption check below.
        fs::remove_file(&wrong).unwrap();

        // Corruption is a miss and drops out of scan entirely.
        let mut bytes = stored.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(store.path_for(b"key-a"), &bytes).unwrap();
        assert_eq!(store.get_raw(hash), None);
        assert!(store.scan().iter().all(|&(h, _)| h != hash));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn filename_collision_resolves_to_miss() {
        let dir = tmpdir("collision");
        let store = ResultStore::open(&dir).unwrap();
        store.put(b"key-a", b"value-a").unwrap();
        // Simulate another key hashing to the same file: rewrite the file
        // under key-a's name but ask for a key whose bytes differ.
        let stored = fs::read(store.path_for(b"key-a")).unwrap();
        fs::write(store.path_for(b"imposter"), &stored).unwrap();
        assert_eq!(store.get(b"imposter"), None);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! The fleet's background loop: gossip heartbeats (membership + failure
//! detection) and anti-entropy store synchronization.
//!
//! ## Heartbeats
//!
//! Every `heartbeat_ms` the daemon gossips its membership view to every
//! *known* peer — including suspects, which is how a recovered peer is
//! rehabilitated without any explicit rejoin step. The first round fires
//! immediately so a freshly-booted peer discovers the mesh through its
//! seeds right away. Each failed round advances the peer's consecutive
//! failure count; crossing `suspect_after` marks it suspect and routing
//! starts skipping it.
//!
//! ## Anti-entropy
//!
//! Every `sync_ms` the daemon exchanges store digests with each live
//! peer. Results are byte-identical by construction (the store is content
//! addressed and replies carry no provenance), so digest comparison is
//! exact: equal buckets prove equal contents, and an unequal bucket means
//! someone is missing entries — never that entries "conflict". The
//! repair path is pull-only: list the divergent bucket, fetch each entry
//! we lack, verify it end-to-end (key hash, canonical re-encode, reply
//! decode), and store it. A peer that sends corrupt bytes loses nothing
//! but the transfer — verification failures are counted and dropped.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::client::call_with_retry;
use crate::fleet::Fleet;
use crate::server::Shared;
use crate::wire::{
    content_hash, dec_scenario, scenario_key_bytes, Dec, ScenarioReply, SYNC_BUCKETS,
};

/// Run heartbeats and anti-entropy until the daemon stops. Spawned by
/// `Server::run` when a fleet is configured.
pub(crate) fn fleet_loop(shared: &Shared) {
    let Some(fleet) = shared.fleet.clone() else {
        return;
    };
    let cfg = fleet.config().clone();
    let heartbeat = Duration::from_millis(cfg.heartbeat_ms.max(10));
    let sync = (cfg.sync_ms > 0).then(|| Duration::from_millis(cfg.sync_ms.max(10)));
    // Discovery cannot wait (a booting peer knows only its seeds), but the
    // first anti-entropy round can: forwarding already replicates warm
    // keys read-through, so the full exchange starts one interval in.
    let mut next_heartbeat = Instant::now();
    let mut next_sync = sync.map(|d| Instant::now() + d);
    while !shared.stopping() {
        let now = Instant::now();
        if now >= next_heartbeat {
            next_heartbeat = now + heartbeat;
            if !shared.partitioned() {
                gossip_round(shared, &fleet);
            }
        }
        if let (Some(interval), Some(at)) = (sync, next_sync) {
            if now >= at {
                next_sync = Some(now + interval);
                if !shared.partitioned() {
                    sync_round(shared, &fleet);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One gossip round: exchange membership views with every known peer.
fn gossip_round(shared: &Shared, fleet: &Fleet) {
    let view = fleet.view();
    for peer in fleet.known_peers() {
        if shared.stopping() || shared.partitioned() {
            return;
        }
        let result = call_with_retry(peer.as_str(), fleet.rpc_policy(), |c| {
            c.gossip(fleet.advertise(), &view)
        });
        match result {
            Ok(theirs) => {
                shared.peer_outcome(&peer, true);
                fleet.merge(&theirs);
            }
            Err(_) => shared.peer_outcome(&peer, false),
        }
    }
    shared.pulse.gossip_rounds.inc();
    shared.refresh_fleet_gauges();
}

/// One anti-entropy round: digest exchange + pull repair with every live
/// peer.
fn sync_round(shared: &Shared, fleet: &Fleet) {
    let Some(store) = &shared.store else {
        return;
    };
    let policy = fleet.rpc_policy();
    for peer in fleet.live_peers() {
        if shared.stopping() || shared.partitioned() {
            return;
        }
        let theirs = match call_with_retry(peer.as_str(), policy, |c| c.sync_digest()) {
            Ok(d) => d,
            Err(_) => {
                shared.peer_outcome(&peer, false);
                continue;
            }
        };
        shared.peer_outcome(&peer, true);
        if theirs.len() != SYNC_BUCKETS {
            continue;
        }
        // Digest *after* the RPC: anything we wrote meanwhile only makes
        // a bucket look divergent, and the repair path tolerates that.
        let mine = store.digest();
        for bucket in 0..SYNC_BUCKETS {
            if mine[bucket] == theirs[bucket] {
                continue;
            }
            let listed = match call_with_retry(peer.as_str(), policy, |c| c.sync_list(bucket as u8))
            {
                Ok(l) => l,
                Err(_) => {
                    shared.peer_outcome(&peer, false);
                    break;
                }
            };
            let have: HashSet<u64> = store.hashes_in_bucket(bucket).into_iter().collect();
            for hash in listed.into_iter().filter(|h| !have.contains(h)) {
                if shared.stopping() || shared.partitioned() {
                    return;
                }
                match call_with_retry(peer.as_str(), policy, |c| c.fetch(hash)) {
                    Ok(Some((key, value))) => {
                        if verify_entry(&key, &value, hash) {
                            if store.put(&key, &value).is_ok() {
                                shared.pulse.sync_pulls.inc();
                                shared
                                    .pulse
                                    .per_peer(
                                        "ghost_fleet_sync_pull_total",
                                        &peer,
                                        "Store entries pulled from peers by anti-entropy",
                                    )
                                    .inc();
                            } else {
                                shared.pulse.store_errors.inc();
                            }
                        } else {
                            shared.pulse.sync_rejects.inc();
                        }
                    }
                    // The peer no longer has (or no longer trusts) the
                    // entry; a later round will reconcile.
                    Ok(None) => {}
                    Err(_) => {
                        shared.peer_outcome(&peer, false);
                        break;
                    }
                }
            }
        }
    }
}

/// Trust nothing a peer sends: the key must hash to the advertised name,
/// decode as a valid scenario whose canonical re-encoding is byte-equal
/// (so a non-canonical key can never alias a real one), and the value
/// must decode as a complete reply. Anything less is rejected, not
/// stored.
fn verify_entry(key: &[u8], value: &[u8], hash: u64) -> bool {
    if content_hash(key) != hash {
        return false;
    }
    let mut d = Dec::new(key);
    let Ok(spec) = dec_scenario(&mut d) else {
        return false;
    };
    if d.finish().is_err() || spec.validate().is_err() || scenario_key_bytes(&spec) != key {
        return false;
    }
    ScenarioReply::from_bytes(value).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_core::scenario::{InjectionSpec, ScenarioSpec, WorkloadSpec};
    use ghost_core::ExperimentSpec;
    use ghost_engine::time::MS;

    #[test]
    fn verify_entry_rejects_everything_but_the_real_thing() {
        let spec = ScenarioSpec {
            workload: WorkloadSpec::Bsp {
                steps: 2,
                compute: MS,
            },
            machine: ExperimentSpec::flat(4, 7),
            injection: InjectionSpec::uncoordinated(100.0, 0.01),
        };
        let key = scenario_key_bytes(&spec);
        let hash = content_hash(&key);
        let outcome =
            ghost_core::scenario::run_scenario(&spec, ghost_mpi::RunLimits::none(), None).unwrap();
        let value = ScenarioReply::from_outcome(&spec, &outcome).to_bytes();

        assert!(verify_entry(&key, &value, hash));
        assert!(!verify_entry(&key, &value, hash ^ 1), "wrong hash");
        assert!(
            !verify_entry(&key[..key.len() - 1], &value, hash),
            "truncated key"
        );
        assert!(
            !verify_entry(&key, &value[..value.len() - 1], hash),
            "truncated value"
        );
        let mut padded = key.clone();
        padded.push(0);
        assert!(
            !verify_entry(&padded, &value, content_hash(&padded)),
            "non-canonical key"
        );
        let mut flipped = value.clone();
        // Corrupt the label-length prefix: decode must fail, not misread.
        flipped[0] ^= 0xff;
        assert!(!verify_entry(&key, &flipped, hash));
    }
}

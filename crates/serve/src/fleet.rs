//! ghost-fleet: the peer registry and key-ownership layer of a sharded
//! ghost-serve cluster.
//!
//! ## Ownership
//!
//! Cache keys are mapped to peers with rendezvous (highest-random-weight)
//! hashing: every peer scores `mix64(key_hash ^ mix64(fnv64(addr)))` and
//! the highest score owns the key. This is the consistent-hashing
//! property the fleet needs — when a peer joins or leaves, *only the keys
//! it owns* change hands; everyone else's placement is untouched — without
//! maintaining an explicit ring structure. All peers compute ownership
//! independently from the same membership view, so agreement follows from
//! the gossip layer converging.
//!
//! ## Failure model
//!
//! A peer accumulates a failure count on every failed call (heartbeat or
//! forward). At `suspect_after` consecutive failures it becomes *suspect*:
//! routing skips it (its keys fall back to the survivors' ownership
//! order, and requests it would have served degrade to local simulation —
//! correct, just slower). Heartbeats keep probing suspects, so one
//! successful call fully rehabilitates a peer. Suspicion is local state:
//! peers may briefly disagree during churn, which is safe because every
//! peer can serve or simulate every key.

use std::collections::BTreeMap;
use std::sync::Mutex;

use ghost_core::scenario::mix64;

use crate::client::RetryPolicy;
use crate::wire::content_hash;

/// Fleet membership and failure-handling knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The address *other peers* use to reach this daemon (also this
    /// peer's identity on the ring).
    pub advertise: String,
    /// Bootstrap peer addresses; the gossip mesh completes membership.
    pub seeds: Vec<String>,
    /// Heartbeat/gossip interval in milliseconds.
    pub heartbeat_ms: u64,
    /// Anti-entropy digest-exchange interval in milliseconds (0 disables
    /// replication sync; forwarding still replicates read-through).
    pub sync_ms: u64,
    /// Consecutive call failures before a peer is suspected.
    pub suspect_after: u32,
    /// Socket timeout for every peer-to-peer call, in milliseconds.
    pub rpc_timeout_ms: u64,
    /// Extra attempts for every peer-to-peer call (bounded retry).
    pub rpc_retries: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            advertise: String::new(),
            seeds: Vec::new(),
            heartbeat_ms: 500,
            sync_ms: 2_000,
            suspect_after: 3,
            rpc_timeout_ms: 2_000,
            rpc_retries: 1,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct PeerState {
    /// Consecutive failed calls; resets on any success.
    failures: u32,
    suspect: bool,
}

/// Live membership view: every known peer plus its suspicion state.
///
/// All methods take `&self`; the registry is internally locked and every
/// operation is short (no I/O under the lock).
pub struct Fleet {
    config: FleetConfig,
    peers: Mutex<BTreeMap<String, PeerState>>,
}

impl Fleet {
    /// A fleet seeded from `config` (the advertise address is implicit
    /// and never appears in the peer registry).
    pub fn new(config: FleetConfig) -> Self {
        let mut peers = BTreeMap::new();
        for seed in &config.seeds {
            if !seed.is_empty() && *seed != config.advertise {
                peers.insert(seed.clone(), PeerState::default());
            }
        }
        Self {
            config,
            peers: Mutex::new(peers),
        }
    }

    /// This peer's own ring identity.
    pub fn advertise(&self) -> &str {
        &self.config.advertise
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The retry policy every peer-to-peer call runs under: bounded
    /// attempts, per-attempt socket timeout, small jittered backoff.
    pub fn rpc_policy(&self) -> RetryPolicy {
        RetryPolicy {
            retries: self.config.rpc_retries,
            base_ms: 25,
            cap_ms: 250,
            deadline_ms: self
                .config
                .rpc_timeout_ms
                .saturating_mul(u64::from(self.config.rpc_retries) + 2),
            timeout_ms: self.config.rpc_timeout_ms,
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, PeerState>> {
        self.peers.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Every known peer address (including suspects, excluding self).
    pub fn known_peers(&self) -> Vec<String> {
        self.locked().keys().cloned().collect()
    }

    /// Every non-suspect peer address (excluding self).
    pub fn live_peers(&self) -> Vec<String> {
        self.locked()
            .iter()
            .filter(|(_, s)| !s.suspect)
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// Suspected peer addresses.
    pub fn suspects(&self) -> Vec<String> {
        self.locked()
            .iter()
            .filter(|(_, s)| s.suspect)
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// The membership view to gossip out: self plus every known peer.
    pub fn view(&self) -> Vec<String> {
        let mut v = vec![self.config.advertise.clone()];
        v.extend(self.known_peers());
        v
    }

    /// Merge addresses learned from gossip; returns how many were new.
    /// Never inserts self or empty addresses.
    pub fn merge(&self, addrs: &[String]) -> usize {
        let mut peers = self.locked();
        let mut added = 0;
        for a in addrs {
            if a.is_empty() || *a == self.config.advertise {
                continue;
            }
            if !peers.contains_key(a) {
                peers.insert(a.clone(), PeerState::default());
                added += 1;
            }
        }
        added
    }

    /// Record a successful call to `addr` (also registers an unknown
    /// sender, e.g. the first inbound gossip from a peer that seeded on
    /// us). Returns `true` if this rehabilitated a suspect.
    pub fn on_success(&self, addr: &str) -> bool {
        if addr.is_empty() || addr == self.config.advertise {
            return false;
        }
        let mut peers = self.locked();
        let state = peers.entry(addr.to_owned()).or_default();
        let was = state.suspect;
        state.failures = 0;
        state.suspect = false;
        was
    }

    /// Record a failed call to `addr`; returns `true` exactly when this
    /// failure crossed the suspicion threshold (so callers can count
    /// *transitions*, not every failure).
    pub fn on_failure(&self, addr: &str) -> bool {
        let mut peers = self.locked();
        let Some(state) = peers.get_mut(addr) else {
            return false;
        };
        state.failures = state.failures.saturating_add(1);
        if !state.suspect && state.failures >= self.config.suspect_after {
            state.suspect = true;
            return true;
        }
        false
    }

    /// The address that owns `key_hash` under the current live view
    /// (rendezvous hashing over self + non-suspect peers). Always returns
    /// an owner: with no live peers, self owns everything.
    pub fn owner_of(&self, key_hash: u64) -> String {
        let mut best = (
            rendezvous_score(key_hash, &self.config.advertise),
            self.config.advertise.clone(),
        );
        for peer in self.live_peers() {
            let score = rendezvous_score(key_hash, &peer);
            // Tie-break on address so every peer agrees even on collisions.
            if score > best.0 || (score == best.0 && peer > best.1) {
                best = (score, peer);
            }
        }
        best.1
    }

    /// Whether this peer owns `key_hash` under the current live view.
    pub fn owns(&self, key_hash: u64) -> bool {
        self.owner_of(key_hash) == self.config.advertise
    }
}

/// A peer's rendezvous score for a key: deterministic, uniform, and
/// independent across peers — the whole consistency argument.
fn rendezvous_score(key_hash: u64, addr: &str) -> u64 {
    mix64(key_hash ^ mix64(content_hash(addr.as_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(advertise: &str, seeds: &[&str]) -> Fleet {
        Fleet::new(FleetConfig {
            advertise: advertise.into(),
            seeds: seeds.iter().map(|s| s.to_string()).collect(),
            ..FleetConfig::default()
        })
    }

    #[test]
    fn ownership_is_agreed_and_balanced() {
        let addrs = ["10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"];
        let fleets: Vec<Fleet> = addrs.iter().map(|a| fleet(a, &addrs)).collect();
        let mut counts = BTreeMap::new();
        for key in 0..3000u64 {
            let owner = fleets[0].owner_of(key);
            for f in &fleets {
                assert_eq!(f.owner_of(key), owner, "peers must agree on key {key}");
            }
            *counts.entry(owner).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3, "all peers own something: {counts:?}");
        for (addr, n) in &counts {
            assert!(*n > 500, "{addr} owns too little: {counts:?}");
        }
    }

    #[test]
    fn suspicion_only_remaps_the_lost_peers_keys() {
        let addrs = ["10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"];
        let f = fleet(addrs[0], &addrs);
        let before: Vec<String> = (0..2000).map(|k| f.owner_of(k)).collect();
        // Drive one peer to suspicion.
        for _ in 0..f.config().suspect_after {
            f.on_failure(addrs[2]);
        }
        assert_eq!(f.suspects(), vec![addrs[2].to_string()]);
        for (k, owner_before) in before.iter().enumerate() {
            let owner_after = f.owner_of(k as u64);
            if owner_before != addrs[2] {
                assert_eq!(
                    &owner_after, owner_before,
                    "key {k} moved although its owner never left"
                );
            } else {
                assert_ne!(&owner_after, addrs[2]);
            }
        }
        // Recovery restores the original placement exactly.
        assert!(f.on_success(addrs[2]));
        let after: Vec<String> = (0..2000).map(|k| f.owner_of(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn suspicion_counts_transitions_not_failures() {
        let f = fleet("a:1", &["b:1"]);
        assert!(!f.on_failure("b:1"));
        assert!(!f.on_failure("b:1"));
        assert!(f.on_failure("b:1"), "third consecutive failure suspects");
        assert!(!f.on_failure("b:1"), "already suspect: no new transition");
        assert!(f.on_success("b:1"), "success rehabilitates");
        assert!(!f.on_failure("b:1"), "counter was reset");
    }

    #[test]
    fn merge_excludes_self_and_duplicates() {
        let f = fleet("a:1", &["b:1"]);
        assert_eq!(
            f.merge(&["a:1".into(), "b:1".into(), "c:1".into(), String::new()]),
            1
        );
        assert_eq!(f.known_peers(), vec!["b:1".to_string(), "c:1".to_string()]);
        assert_eq!(f.view()[0], "a:1", "view leads with self");
    }

    #[test]
    fn unknown_peer_failures_are_ignored() {
        let f = fleet("a:1", &[]);
        assert!(
            !f.on_failure("ghost:9"),
            "never-seen peers cannot be suspected"
        );
        assert!(f.suspects().is_empty());
    }
}

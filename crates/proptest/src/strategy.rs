//! The [`Strategy`] trait and implementations for ranges and tuples.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                // span == 0 means the full u64 domain; `below(0)` would be
                // wrong, but no GhostSim strategy spans 2^64 values.
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let wide = (self.start as f64..self.end as f64).generate(rng) as f32;
        wide.clamp(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A strategy that always yields a clone of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::new(3);
        let strat = -100i64..-50;
        let mut saw_low = false;
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((-100..-50).contains(&v));
            if v < -90 {
                saw_low = true;
            }
        }
        assert!(saw_low, "range sampling suspiciously clustered");
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::new(5);
        let strat = 0u8..=1;
        let draws: Vec<u8> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&1));
    }

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::new(1);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}

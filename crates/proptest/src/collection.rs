//! Collection strategies (mirrors `proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `Vec`s of values from `element` with a length drawn
/// uniformly from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec` strategy: `vec(0u64..100, 1..10)` yields vectors of 1..10
/// elements each drawn from `0..100`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_vectors_possible() {
        let strat = vec(0u8..5, 0..3);
        let mut rng = TestRng::new(11);
        let mut saw_empty = false;
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 3);
            saw_empty |= v.is_empty();
        }
        assert!(saw_empty);
    }

    #[test]
    fn nested_tuples_in_vec() {
        let strat = vec((0u64..10, 0u64..500), 1..5);
        let mut rng = TestRng::new(2);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty());
        for (a, b) in v {
            assert!(a < 10 && b < 500);
        }
    }
}

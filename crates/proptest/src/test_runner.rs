//! Test-runner plumbing: configuration, deterministic RNG, case errors.

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream proptest's default.
        Self { cases: 256 }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving all strategies (SplitMix64: tiny, fast,
/// and statistically adequate for test-case generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound` = 0 yields 0). Uses rejection
    /// sampling to avoid modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Deterministic per-case seed: a pure function of the test name and case
/// index, so failures replay without stored state (FNV-1a over both).
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for b in case.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_unbiased_at_bounds() {
        let mut rng = TestRng::new(7);
        for bound in [1u64, 2, 3, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn case_seed_varies_with_name_and_index() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }
}

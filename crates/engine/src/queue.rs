//! Discrete-event queue with deterministic tie-breaking.
//!
//! A simulation's correctness — and, just as important here, its
//! *reproducibility* — depends on the order in which simultaneous events are
//! delivered. [`EventQueue`] orders events by `(time, sequence-number)`, where
//! the sequence number is assigned at push time, so events scheduled for the
//! same instant pop in the order they were scheduled (FIFO). This makes every
//! GhostSim run a pure function of its configuration and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::des::{DesQueue, ScheduleError};
use crate::time::Time;

/// An event queue for discrete-event simulation.
///
/// Events carry an arbitrary payload `E`. The queue tracks the current
/// simulation time (`now`), defined as the timestamp of the most recently
/// popped event; pushing an event into the past is a logic error (panics in
/// debug builds, clamps to `now` in release builds — see
/// [`EventQueue::push`]).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Time,
    pushed: u64,
    popped: u64,
    peak: usize,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at simulation time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            pushed: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: 0,
            pushed: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (for simulator statistics).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped (for simulator statistics).
    #[inline]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Peak number of simultaneously pending events over the queue's
    /// lifetime (the working-set size a calendar-queue replacement must
    /// handle well).
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Scheduling into the past is a logic error: a discrete-event
    /// simulation must never do it. Debug builds panic on it; release
    /// builds clamp the event to `now` so a production daemon degrades
    /// (the event fires immediately) instead of aborting. Use
    /// [`EventQueue::try_push`] for a typed rejection.
    #[inline]
    pub fn push(&mut self, time: Time, payload: E) {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {} < now {}",
            time,
            self.now
        );
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, payload });
        self.peak = self.peak.max(self.heap.len());
    }

    /// Schedule `payload` at `time`, rejecting past times with a typed
    /// [`ScheduleError`] (the queue is left untouched).
    #[inline]
    pub fn try_push(&mut self, time: Time, payload: E) -> Result<(), ScheduleError> {
        if time < self.now {
            return Err(ScheduleError {
                time,
                now: self.now,
            });
        }
        self.push(time, payload);
        Ok(())
    }

    /// Pop the earliest event, advancing the simulation clock to its time.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap order violated");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.payload))
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> DesQueue<E> for EventQueue<E> {
    #[inline]
    fn with_capacity_hint(cap: usize) -> Self {
        Self::with_capacity(cap)
    }
    #[inline]
    fn push(&mut self, time: Time, payload: E) {
        EventQueue::push(self, time, payload);
    }
    #[inline]
    fn try_push(&mut self, time: Time, payload: E) -> Result<(), ScheduleError> {
        EventQueue::try_push(self, time, payload)
    }
    #[inline]
    fn pop(&mut self) -> Option<(Time, E)> {
        EventQueue::pop(self)
    }
    #[inline]
    fn peek_time(&self) -> Option<Time> {
        EventQueue::peek_time(self)
    }
    #[inline]
    fn now(&self) -> Time {
        EventQueue::now(self)
    }
    #[inline]
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    #[inline]
    fn total_pushed(&self) -> u64 {
        EventQueue::total_pushed(self)
    }
    #[inline]
    fn total_popped(&self) -> u64 {
        EventQueue::total_popped(self)
    }
    #[inline]
    fn peak_len(&self) -> usize {
        EventQueue::peak_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 'c');
        q.push(10, 'a');
        q.push(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.push(5, ());
        q.push(9, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn pushing_into_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.pop();
        q.push(9, ());
    }

    #[test]
    fn try_push_into_the_past_is_a_typed_error() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.pop();
        assert_eq!(q.try_push(9, 2), Err(ScheduleError { time: 9, now: 10 }));
        assert_eq!(q.len(), 0, "rejected push must not enqueue");
        assert!(q.try_push(10, 3).is_ok());
        assert_eq!(q.pop(), Some((10, 3)));
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.pop();
        q.push(10, 2); // same instant as `now` is legal
        assert_eq!(q.pop(), Some((10, 2)));
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.push(1, ());
        q.push(2, ());
        q.push(3, ());
        q.pop();
        q.pop();
        q.push(4, ());
        // High-water mark was 3 pending; later pushes at depth 2 don't move it.
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        q.push(3, ());
        assert_eq!(q.peek_time(), Some(3));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(10, "a");
        q.push(30, "c");
        assert_eq!(q.pop(), Some((10, "a")));
        q.push(20, "b");
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
    }

    #[test]
    fn large_random_workload_is_sorted() {
        // Deterministic pseudo-random times via a tiny LCG; verifies heap
        // ordering over a large volume.
        let mut q = EventQueue::with_capacity(10_000);
        let mut state: u64 = 0x1234_5678;
        let mut times = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = state >> 33;
            times.push(t);
            q.push(t, t);
        }
        times.sort_unstable();
        for expect in times {
            let (t, p) = q.pop().unwrap();
            assert_eq!(t, expect);
            assert_eq!(p, expect);
        }
    }
}

//! Calendar queue: an O(1)-amortized alternative to the binary-heap event
//! queue.
//!
//! Discrete-event simulators with high event rates and roughly uniform
//! inter-event gaps (exactly GhostSim's profile: millions of message events
//! with LogGP-scale spacing) traditionally use Randy Brown's *calendar
//! queue*: a ring of time buckets ("days"), each holding a sorted short
//! list, rotated as the clock advances. Enqueue and dequeue are O(1)
//! amortized when the bucket width matches the event-gap distribution; the
//! structure resizes itself when occupancy drifts.
//!
//! Buckets hold *time groups* — one FIFO of payloads per distinct
//! timestamp, with the groups kept sorted by time — rather than one flat
//! sorted list of entries. The executor's traffic is dominated by huge
//! same-instant tie blocks (every rank of a synchronized collective round
//! resumes at the identical nanosecond), and a tie block always lands in
//! one bucket no matter the bucket width. Per-entry structures collapse
//! there: a flat sorted list pays an O(occupancy) memmove whenever a
//! near-time block interleaves with a far-time block (quadratic per
//! collective stage — this dominated profiles at 8k ranks), and a
//! per-bucket binary heap pays an O(log occupancy) sift with 48-byte moves
//! on every pop. Grouping by timestamp makes tie traffic O(1) per event on
//! both ends (append to / pop from the group's deque) and confines
//! ordering work to *distinct times per bucket*, which the bucket geometry
//! keeps small. Drained group deques are recycled through a spare pool, so
//! distinct-time-heavy traffic (noisy runs perturb every timestamp) makes
//! no steady-state allocations either.
//!
//! [`CalendarQueue`] is a drop-in alternative to [`crate::EventQueue`] with
//! identical ordering semantics (time, then insertion order); both implement
//! [`DesQueue`] and the executor is generic over the choice. The
//! `perf_engine` bench compares the two; the property tests below and
//! `tests/queue_equiv_prop.rs` prove behavioral equivalence.

use std::collections::VecDeque;

use crate::des::{DesQueue, ScheduleError};
use crate::time::Time;

/// An event queue implemented as a calendar queue.
///
/// Ordering contract matches [`crate::EventQueue`]: events pop in
/// non-decreasing time order; ties pop in insertion (FIFO) order. Past-time
/// pushes follow the [`DesQueue`] contract (debug panic, release clamp;
/// [`CalendarQueue::try_push`] for a typed rejection).
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Buckets: time groups sorted by time (see module docs). Insertion
    /// order *within* a timestamp is the group deque's order; insertion
    /// order *across* timestamps is irrelevant to the (time, FIFO)
    /// contract, so no per-entry sequence number is stored.
    buckets: Vec<VecDeque<TimeGroup<E>>>,
    /// Recycled group deques (capacity retained) so opening a group at a
    /// fresh timestamp makes no allocation in steady state.
    spare: Vec<VecDeque<E>>,
    /// Total live groups across all buckets (resize trigger).
    groups: usize,
    /// Width of one bucket in ns.
    width: Time,
    /// Index of the bucket containing `now`.
    cursor: usize,
    /// Start time of the cursor bucket.
    bucket_start: Time,
    len: usize,
    now: Time,
    pushed: u64,
    popped: u64,
    peak: usize,
}

/// Every pending event at one exact timestamp, in insertion (pop) order.
#[derive(Debug)]
struct TimeGroup<E> {
    time: Time,
    items: VecDeque<E>,
}

impl<E> CalendarQueue<E> {
    /// Create a queue with an initial bucket `width` guess (ns per bucket)
    /// and bucket count. Good defaults for GhostSim message traffic:
    /// `with_params(1_000, 512)`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `buckets == 0`.
    pub fn with_params(width: Time, buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            buckets: (0..buckets).map(|_| VecDeque::new()).collect(),
            spare: Vec::new(),
            groups: 0,
            width,
            cursor: 0,
            bucket_start: 0,
            len: 0,
            now: 0,
            pushed: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Create with defaults suitable for microsecond-scale event gaps.
    pub fn new() -> Self {
        Self::with_params(1_000, 512)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current simulation time (last popped event's time).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events ever pushed (for simulator statistics).
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped (for simulator statistics).
    #[inline]
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Peak number of simultaneously pending events over the queue's
    /// lifetime.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Timestamp of the earliest pending event, if any (O(buckets): each
    /// bucket's front is its minimum).
    pub fn peek_time(&self) -> Option<Time> {
        self.buckets
            .iter()
            .filter_map(|b| b.front().map(|g| g.time))
            .min()
    }

    fn bucket_of(&self, time: Time) -> usize {
        ((time / self.width) as usize) % self.buckets.len()
    }

    /// Schedule `payload` at `time`. Past-time pushes panic in debug builds
    /// and clamp to `now` in release builds (see [`DesQueue::push`]).
    pub fn push(&mut self, time: Time, payload: E) {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {} < now {}",
            time,
            self.now
        );
        let time = time.max(self.now);
        self.pushed += 1;
        self.len += 1;
        self.peak = self.peak.max(self.len);
        let b = self.bucket_of(time);
        let bucket = &mut self.buckets[b];
        // Find the group for `time`: the bucket's latest group is checked
        // first because pushes overwhelmingly target it (tie blocks and
        // monotone streams), making the common case one comparison.
        let blen = bucket.len();
        if let Some(g) = bucket.back_mut() {
            if g.time == time {
                g.items.push_back(payload);
                return;
            }
        }
        let at = if bucket.back().is_none_or(|g| g.time < time) {
            blen
        } else {
            let at = bucket.partition_point(|g| g.time < time);
            if let Some(g) = bucket.get_mut(at) {
                if g.time == time {
                    g.items.push_back(payload);
                    return;
                }
            }
            at
        };
        // New timestamp: open a group at the sorted position. The memmove
        // shifts whole groups (not entries), and distinct times per bucket
        // are few by construction.
        let mut items = self.spare.pop().unwrap_or_default();
        items.push_back(payload);
        bucket.insert(at, TimeGroup { time, items });
        self.groups += 1;
        // Keep amortized O(1): resize on *group* occupancy. Tie blocks can
        // make `len` huge while ordering work stays O(1), so entry counts
        // must not trigger a rebuild.
        if self.groups > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Schedule `payload` at `time`, rejecting past times with a typed
    /// [`ScheduleError`] (the queue is left untouched).
    pub fn try_push(&mut self, time: Time, payload: E) -> Result<(), ScheduleError> {
        if time < self.now {
            return Err(ScheduleError {
                time,
                now: self.now,
            });
        }
        self.push(time, payload);
        Ok(())
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        // Scan forward from the cursor bucket; an event in bucket i is
        // popped this "year" only if its time falls inside the bucket's
        // current window.
        loop {
            for step in 0..nb {
                let i = (self.cursor + step) % nb;
                let window_end = self.bucket_start + (step as Time + 1) * self.width;
                if let Some(head) = self.buckets[i].front_mut() {
                    if head.time < window_end {
                        let time = head.time;
                        debug_assert!(time >= self.now);
                        let Some(payload) = head.items.pop_front() else {
                            break;
                        };
                        if head.items.is_empty() {
                            if let Some(g) = self.buckets[i].pop_front() {
                                self.groups -= 1;
                                self.spare.push(g.items);
                            }
                        }
                        self.len -= 1;
                        self.popped += 1;
                        self.now = time;
                        self.cursor = i;
                        self.bucket_start = window_end - self.width;
                        return Some((time, payload));
                    }
                }
            }
            // No event within the current year: jump the calendar to the
            // global minimum's year instead of spinning year by year.
            let Some(min_time) = self.peek_time() else {
                debug_assert!(false, "len > 0 but no events found");
                return None;
            };
            self.bucket_start = min_time - (min_time % self.width);
            self.cursor = self.bucket_of(min_time);
        }
    }

    /// Rebuild with a different bucket count (width kept). Groups move
    /// wholesale — a timestamp's FIFO is never split — and redistributing
    /// them in global time order keeps every target bucket sorted with
    /// plain O(1) back-pushes.
    fn resize(&mut self, new_buckets: usize) {
        let mut groups: Vec<TimeGroup<E>> = Vec::with_capacity(self.groups);
        for b in &mut self.buckets {
            groups.extend(b.drain(..));
        }
        groups.sort_unstable_by_key(|g| g.time);
        self.buckets = (0..new_buckets).map(|_| VecDeque::new()).collect();
        for g in groups {
            let b = ((g.time / self.width) as usize) % new_buckets;
            self.buckets[b].push_back(g);
        }
        self.cursor = self.bucket_of(self.now.max(self.bucket_start));
        self.bucket_start = self.now - (self.now % self.width);
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> DesQueue<E> for CalendarQueue<E> {
    #[inline]
    fn with_capacity_hint(cap: usize) -> Self {
        // Start with one bucket per ~2 expected pending events, so the
        // grow-on-occupancy path is exercised only when the hint is wrong.
        let buckets = (cap / 2).next_power_of_two().clamp(512, 1 << 20);
        Self::with_params(1_000, buckets)
    }
    #[inline]
    fn push(&mut self, time: Time, payload: E) {
        CalendarQueue::push(self, time, payload);
    }
    #[inline]
    fn try_push(&mut self, time: Time, payload: E) -> Result<(), ScheduleError> {
        CalendarQueue::try_push(self, time, payload)
    }
    #[inline]
    fn pop(&mut self) -> Option<(Time, E)> {
        CalendarQueue::pop(self)
    }
    #[inline]
    fn peek_time(&self) -> Option<Time> {
        CalendarQueue::peek_time(self)
    }
    #[inline]
    fn now(&self) -> Time {
        CalendarQueue::now(self)
    }
    #[inline]
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    #[inline]
    fn total_pushed(&self) -> u64 {
        CalendarQueue::total_pushed(self)
    }
    #[inline]
    fn total_popped(&self) -> u64 {
        CalendarQueue::total_popped(self)
    }
    #[inline]
    fn peak_len(&self) -> usize {
        CalendarQueue::peak_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(30_000, 'c');
        q.push(10, 'a');
        q.push(2_000, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((2_000, 'b')));
        assert_eq!(q.pop(), Some((30_000, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..200 {
            q.push(777, i);
        }
        for i in 0..200 {
            assert_eq!(q.pop(), Some((777, i)));
        }
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        // Events many "years" beyond the calendar span exercise the jump
        // path.
        let mut q = CalendarQueue::with_params(100, 8);
        q.push(10, 1);
        q.push(1_000_000_000, 2);
        q.push(5_000_000_000_000, 3);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((1_000_000_000, 2)));
        assert_eq!(q.pop(), Some((5_000_000_000_000, 3)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled in the past")]
    fn pushing_into_the_past_panics_in_debug() {
        let mut q = CalendarQueue::new();
        q.push(100, ());
        q.pop();
        q.push(99, ());
    }

    #[test]
    fn try_push_into_the_past_is_a_typed_error() {
        let mut q = CalendarQueue::new();
        q.push(100, 1);
        q.pop();
        assert_eq!(q.try_push(99, 2), Err(ScheduleError { time: 99, now: 100 }));
        assert!(q.is_empty(), "rejected push must not enqueue");
        assert!(q.try_push(100, 3).is_ok());
        assert_eq!(q.pop(), Some((100, 3)));
    }

    #[test]
    fn counters_and_peek_mirror_the_heap_queue() {
        let mut q = CalendarQueue::with_params(10, 4);
        assert_eq!(q.peek_time(), None);
        q.push(50, 'a');
        q.push(5, 'b');
        q.push(5, 'c');
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.pop(), Some((5, 'b')));
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.now(), 5);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::with_params(10, 4);
        q.push(5, "a");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(7, "b");
        q.push(6, "c");
        assert_eq!(q.pop(), Some((6, "c")));
        q.push(100, "d");
        assert_eq!(q.pop(), Some((7, "b")));
        assert_eq!(q.pop(), Some((100, "d")));
        assert!(q.is_empty());
    }

    #[test]
    fn resize_preserves_order() {
        let mut q = CalendarQueue::with_params(10, 2);
        // Push enough to trigger resizes.
        let mut state = 99u64;
        let mut times = Vec::new();
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (state >> 40) % 100_000;
            times.push(t);
            q.push(t, t);
        }
        times.sort_unstable();
        for expect in times {
            assert_eq!(q.pop().map(|(t, _)| t), Some(expect));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn equivalent_to_binary_heap_queue(
            times in proptest::collection::vec(0u64..1_000_000, 1..300),
            width in 1u64..50_000,
            buckets in 1usize..64,
        ) {
            // Push everything, pop everything: both queues must deliver the
            // identical (time, payload) sequence.
            let mut cal = CalendarQueue::with_params(width, buckets);
            let mut heap: EventQueue<usize> = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                cal.push(t, i);
                heap.push(t, i);
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }

        #[test]
        fn equivalent_under_interleaving(
            ops in proptest::collection::vec((0u64..100_000, proptest::bool::ANY), 1..200),
        ) {
            // Random interleave of pushes (time offsets from `now`) and pops.
            let mut cal = CalendarQueue::with_params(777, 16);
            let mut heap: EventQueue<usize> = EventQueue::new();
            let mut i = 0;
            for (dt, do_pop) in ops {
                if do_pop {
                    prop_assert_eq!(cal.pop(), heap.pop());
                } else {
                    let t = heap.now().max(cal.now()) + dt;
                    cal.push(t, i);
                    heap.push(t, i);
                    i += 1;
                }
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

//! Calendar queue: an O(1)-amortized alternative to the binary-heap event
//! queue.
//!
//! Discrete-event simulators with high event rates and roughly uniform
//! inter-event gaps (exactly GhostSim's profile: millions of message events
//! with LogGP-scale spacing) traditionally use Randy Brown's *calendar
//! queue*: a ring of time buckets ("days"), each holding a sorted short
//! list, rotated as the clock advances. Enqueue and dequeue are O(1)
//! amortized when the bucket width matches the event-gap distribution; the
//! structure resizes itself when occupancy drifts.
//!
//! [`CalendarQueue`] is a drop-in alternative to
//! [`crate::EventQueue`] with identical ordering semantics (time, then
//! insertion order). The `perf_engine` bench compares the two; the property
//! tests below prove behavioral equivalence.

use crate::time::Time;

/// An event queue implemented as a calendar queue.
///
/// Ordering contract matches [`crate::EventQueue`]: events pop in
/// non-decreasing time order; ties pop in insertion (FIFO) order.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Buckets: each a vec of entries kept sorted by (time, seq) ascending
    /// at *insertion* time (binary insert).
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one bucket in ns.
    width: Time,
    /// Index of the bucket containing `now`.
    cursor: usize,
    /// Start time of the cursor bucket.
    bucket_start: Time,
    len: usize,
    seq: u64,
    now: Time,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> CalendarQueue<E> {
    /// Create a queue with an initial bucket `width` guess (ns per bucket)
    /// and bucket count. Good defaults for GhostSim message traffic:
    /// `with_params(1_000, 512)`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `buckets == 0`.
    pub fn with_params(width: Time, buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            width,
            cursor: 0,
            bucket_start: 0,
            len: 0,
            seq: 0,
            now: 0,
        }
    }

    /// Create with defaults suitable for microsecond-scale event gaps.
    pub fn new() -> Self {
        Self::with_params(1_000, 512)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current simulation time (last popped event's time).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    fn bucket_of(&self, time: Time) -> usize {
        ((time / self.width) as usize) % self.buckets.len()
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current simulation time.
    pub fn push(&mut self, time: Time, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {} < now {}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let b = self.bucket_of(time);
        let bucket = &mut self.buckets[b];
        // Binary insert by (time, seq): seq is globally increasing, so among
        // equal times the new entry goes last — partition_point on time
        // alone suffices.
        let pos = bucket.partition_point(|e| (e.time, e.seq) <= (time, seq));
        bucket.insert(pos, Entry { time, seq, payload });
        self.len += 1;
        // Keep amortized O(1): resize when severely unbalanced.
        if self.len > self.buckets.len() * 4 {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        let year = self.width * nb as Time;
        // Scan forward from the cursor bucket; an event in bucket i is
        // popped this "year" only if its time falls inside the bucket's
        // current window.
        loop {
            for step in 0..nb {
                let i = (self.cursor + step) % nb;
                let window_start = self.bucket_start + step as Time * self.width;
                let window_end = window_start + self.width;
                if let Some(head) = self.buckets[i].first() {
                    if head.time < window_end {
                        let e = self.buckets[i].remove(0);
                        debug_assert!(e.time >= self.now);
                        self.len -= 1;
                        self.now = e.time;
                        self.cursor = i;
                        self.bucket_start = window_start;
                        return Some((e.time, e.payload));
                    }
                }
                // Direct-search shortcut: if the whole structure's minimum
                // is far in the future, jump instead of spinning year by
                // year (handled below after the full sweep).
            }
            // No event within the current year: jump the calendar to the
            // global minimum's year.
            let min_time = self
                .buckets
                .iter()
                .filter_map(|b| b.first().map(|e| e.time))
                .min()
                .expect("len > 0 but no events found");
            self.bucket_start = min_time - (min_time % self.width);
            self.cursor = self.bucket_of(min_time);
            let _ = year;
        }
    }

    /// Rebuild with a different bucket count (width kept).
    fn resize(&mut self, new_buckets: usize) {
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        self.buckets = (0..new_buckets).map(|_| Vec::new()).collect();
        for e in entries {
            let b = ((e.time / self.width) as usize) % new_buckets;
            let bucket = &mut self.buckets[b];
            let pos = bucket.partition_point(|x| (x.time, x.seq) <= (e.time, e.seq));
            bucket.insert(pos, e);
        }
        self.cursor = self.bucket_of(self.now.max(self.bucket_start));
        self.bucket_start = self.now - (self.now % self.width);
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(30_000, 'c');
        q.push(10, 'a');
        q.push(2_000, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((2_000, 'b')));
        assert_eq!(q.pop(), Some((30_000, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..200 {
            q.push(777, i);
        }
        for i in 0..200 {
            assert_eq!(q.pop(), Some((777, i)));
        }
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        // Events many "years" beyond the calendar span exercise the jump
        // path.
        let mut q = CalendarQueue::with_params(100, 8);
        q.push(10, 1);
        q.push(1_000_000_000, 2);
        q.push(5_000_000_000_000, 3);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((1_000_000_000, 2)));
        assert_eq!(q.pop(), Some((5_000_000_000_000, 3)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn pushing_into_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.push(100, ());
        q.pop();
        q.push(99, ());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::with_params(10, 4);
        q.push(5, "a");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(7, "b");
        q.push(6, "c");
        assert_eq!(q.pop(), Some((6, "c")));
        q.push(100, "d");
        assert_eq!(q.pop(), Some((7, "b")));
        assert_eq!(q.pop(), Some((100, "d")));
        assert!(q.is_empty());
    }

    #[test]
    fn resize_preserves_order() {
        let mut q = CalendarQueue::with_params(10, 2);
        // Push enough to trigger resizes.
        let mut state = 99u64;
        let mut times = Vec::new();
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (state >> 40) % 100_000;
            times.push(t);
            q.push(t, t);
        }
        times.sort_unstable();
        for expect in times {
            assert_eq!(q.pop().map(|(t, _)| t), Some(expect));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn equivalent_to_binary_heap_queue(
            times in proptest::collection::vec(0u64..1_000_000, 1..300),
            width in 1u64..50_000,
            buckets in 1usize..64,
        ) {
            // Push everything, pop everything: both queues must deliver the
            // identical (time, payload) sequence.
            let mut cal = CalendarQueue::with_params(width, buckets);
            let mut heap: EventQueue<usize> = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                cal.push(t, i);
                heap.push(t, i);
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }

        #[test]
        fn equivalent_under_interleaving(
            ops in proptest::collection::vec((0u64..100_000, proptest::bool::ANY), 1..200),
        ) {
            // Random interleave of pushes (time offsets from `now`) and pops.
            let mut cal = CalendarQueue::with_params(777, 16);
            let mut heap: EventQueue<usize> = EventQueue::new();
            let mut i = 0;
            for (dt, do_pop) in ops {
                if do_pop {
                    prop_assert_eq!(cal.pop(), heap.pop());
                } else {
                    let t = heap.now().max(cal.now()) + dt;
                    cal.push(t, i);
                    heap.push(t, i);
                    i += 1;
                }
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

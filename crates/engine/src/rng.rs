//! Self-contained deterministic random number generation.
//!
//! GhostSim needs randomness in several places — per-node noise phases,
//! stochastic noise arrival processes, load-imbalance draws — and the whole
//! simulation must be reproducible from a single `u64` seed, independent of
//! the order in which nodes happen to be simulated. We therefore give every
//! node its own *stream*: an independent [`Xoshiro256`] generator seeded by
//! mixing the experiment seed with the node id through SplitMix64.
//!
//! The generators are implemented here rather than pulled from the `rand`
//! crate so that the exact output sequence is pinned by this crate's own
//! tests (the `rand` crate reserves the right to change algorithm details
//! between versions, which would silently change every experiment).
//! `rand` remains available for test-only use elsewhere in the workspace.

/// Advance a SplitMix64 state and return the next output.
///
/// SplitMix64 is the canonical seeding function for the xoshiro family: it
/// decorrelates arbitrary (even sequential) seed inputs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator (Blackman & Vigna), 256-bit state, period 2^256−1.
///
/// Fast, high quality, and trivially seedable per node. Not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the generator from a single `u64` via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is the one invalid xoshiro state; SplitMix64 of
        // any seed cannot produce four zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift with rejection for exact uniformity.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        // Lemire's method: rejection zone keeps the result exactly uniform.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Exponentially distributed sample with the given rate (events per unit).
    ///
    /// Returns `ln(1/u)/rate` where `u ~ U(0,1]`; mean is `1/rate`.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // 1 - next_f64() is in (0, 1]; avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Standard normal sample via Box–Muller (no caching: simplicity over
    /// the ~2x speed of caching the second variate; this is not a hot path).
    #[inline]
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pareto(scale=1, shape=alpha) sample; heavy-tailed for straggler models.
    #[inline]
    pub fn pareto(&mut self, alpha: f64) -> f64 {
        debug_assert!(alpha > 0.0);
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        u.powf(-1.0 / alpha)
    }
}

/// Factory for per-node independent random streams.
///
/// Two streams with different node ids (or different experiment seeds) are
/// statistically independent; the same `(seed, node)` pair always yields the
/// identical sequence.
#[derive(Debug, Clone, Copy)]
pub struct NodeStream {
    seed: u64,
}

impl NodeStream {
    /// Create a stream factory for an experiment-level seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The experiment-level seed this factory mixes from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generator for node `node`, purpose-tagged by `stream` so independent
    /// consumers on the same node (noise phase vs. load imbalance, say) do
    /// not share a sequence.
    pub fn for_node(&self, node: usize, stream: u64) -> Xoshiro256 {
        let mut sm = self.seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut sm);
        let mut mixed =
            a ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream.rotate_left(32);
        let s = splitmix64(&mut mixed);
        Xoshiro256::seed_from_u64(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 (from the public-domain reference
        // implementation by Sebastiano Vigna).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams nearly identical: {same}/64 collisions");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut g = Xoshiro256::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut g = Xoshiro256::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = g.gen_range(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "not all values in [0,10) hit");
    }

    #[test]
    #[should_panic(expected = "gen_range(0)")]
    fn gen_range_zero_panics() {
        Xoshiro256::seed_from_u64(1).gen_range(0);
    }

    #[test]
    fn gen_range_one_is_always_zero() {
        let mut g = Xoshiro256::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(g.gen_range(1), 0);
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut g = Xoshiro256::seed_from_u64(21);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| g.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut g = Xoshiro256::seed_from_u64(23);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn pareto_is_at_least_scale() {
        let mut g = Xoshiro256::seed_from_u64(29);
        for _ in 0..10_000 {
            assert!(g.pareto(2.5) >= 1.0);
        }
    }

    #[test]
    fn node_streams_are_reproducible_and_distinct() {
        let f = NodeStream::new(1234);
        let mut a1 = f.for_node(5, 0);
        let mut a2 = f.for_node(5, 0);
        let mut b = f.for_node(6, 0);
        let mut c = f.for_node(5, 1);
        let va1: Vec<u64> = (0..16).map(|_| a1.next_u64()).collect();
        let va2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va1, va2, "same (seed,node,stream) must repeat exactly");
        assert_ne!(va1, vb, "different nodes must differ");
        assert_ne!(va1, vc, "different stream tags must differ");
    }

    #[test]
    fn node_stream_seed_accessor() {
        assert_eq!(NodeStream::new(99).seed(), 99);
    }
}

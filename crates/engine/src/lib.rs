//! # ghost-engine — deterministic discrete-event simulation core
//!
//! This crate is the foundation of GhostSim, the reproduction of the SC'07
//! OS-noise study ("The Ghost in the Machine: Observing the Effects of Kernel
//! Operation on Parallel Application Performance"). Everything above it —
//! noise processes, the network model, the simulated MPI layer, and the
//! application skeletons — is driven by the three primitives defined here:
//!
//! * [`Time`]/[`Work`] — simulated wall-clock time and CPU work, both in
//!   integer nanoseconds, so simulations are exactly reproducible across
//!   platforms (no floating-point time accumulation).
//! * [`EventQueue`] — a binary-heap discrete-event queue with deterministic
//!   FIFO tie-breaking for simultaneous events.
//! * [`rng`] — a self-contained SplitMix64/xoshiro256++ implementation with
//!   per-node independent streams, so per-node randomness (noise phases,
//!   stochastic noise arrivals, load imbalance) is reproducible regardless of
//!   the order in which nodes are simulated.
//!
//! The engine deliberately knows nothing about MPI, noise, or networks; it is
//! a small, heavily tested kernel that the rest of the workspace builds on.
//!
//! ## Example
//!
//! ```
//! use ghost_engine::{EventQueue, time::MS};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(2 * MS, "second");
//! q.push(1 * MS, "first");
//! q.push(2 * MS, "third"); // same time as "second": FIFO order preserved
//!
//! assert_eq!(q.pop(), Some((1 * MS, "first")));
//! assert_eq!(q.pop(), Some((2 * MS, "second")));
//! assert_eq!(q.pop(), Some((2 * MS, "third")));
//! assert_eq!(q.pop(), None);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod calendar;
pub mod cursor;
pub mod des;
pub mod queue;
pub mod rng;
pub mod time;

pub use calendar::CalendarQueue;
pub use cursor::CpuCursor;
pub use des::{DesQueue, ScheduleError};
pub use queue::EventQueue;
pub use rng::{splitmix64, NodeStream, Xoshiro256};
pub use time::{Time, Work};

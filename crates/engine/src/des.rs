//! The [`DesQueue`] trait: the ordering contract every GhostSim event queue
//! implements.
//!
//! A discrete-event simulation is a pure function of its configuration and
//! seed *only if* the event queue's ordering is fully deterministic. The
//! contract is: events pop in non-decreasing `time` order, and events
//! scheduled for the same instant pop in the order they were pushed (FIFO,
//! via a sequence number assigned at push time). Two implementations ship
//! with the engine:
//!
//! * [`crate::EventQueue`] — a binary heap over `(time, seq)`. O(log n) per
//!   operation, no tuning knobs, the differential-testing reference.
//! * [`crate::CalendarQueue`] — Randy Brown's calendar queue. O(1) amortized
//!   when the bucket width matches the event-gap distribution; the executor's
//!   default.
//!
//! The executor (`ghost_mpi::exec`) is generic over this trait and is
//! monomorphized per queue, so the indirection costs nothing at runtime.
//! Property tests (`tests/queue_equiv_prop.rs` at the workspace root and the
//! proptests in [`crate::calendar`]) pin the two implementations to
//! byte-identical pop sequences.

use crate::time::Time;

/// Error returned by [`DesQueue::try_push`] when an event is scheduled
/// before the queue's current simulation time.
///
/// Scheduling into the past is always a logic error in a well-formed
/// simulation, but a daemon driving the engine from untrusted input must be
/// able to surface it as a typed error instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleError {
    /// The requested (past) timestamp.
    pub time: Time,
    /// The queue's current simulation time.
    pub now: Time,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event scheduled in the past: {} < now {}",
            self.time, self.now
        )
    }
}

impl std::error::Error for ScheduleError {}

/// A deterministic discrete-event queue ordered by `(time, push order)`.
///
/// Implementations must satisfy, for any interleaving of pushes and pops:
///
/// * `pop` returns events in non-decreasing `time` order;
/// * events with equal `time` pop in push (FIFO) order;
/// * `now` is the timestamp of the most recently popped event (0 initially),
///   and `pop` advances it;
/// * [`DesQueue::push`] with `time < now` is a logic error: it panics in
///   debug builds and clamps to `now` in release builds (preserving the
///   ordering invariant without panicking a production daemon). The typed
///   alternative [`DesQueue::try_push`] rejects it with a [`ScheduleError`]
///   and leaves the queue untouched.
pub trait DesQueue<E> {
    /// Create an empty queue sized for roughly `cap` concurrently pending
    /// events (a hint; implementations may ignore it).
    fn with_capacity_hint(cap: usize) -> Self
    where
        Self: Sized;

    /// Schedule `payload` at absolute time `time`. See the trait docs for
    /// the past-time contract.
    fn push(&mut self, time: Time, payload: E);

    /// Schedule `payload` at absolute time `time`, rejecting past times
    /// with a typed error instead of panicking or clamping.
    fn try_push(&mut self, time: Time, payload: E) -> Result<(), ScheduleError>;

    /// Pop the earliest event, advancing the simulation clock to its time.
    fn pop(&mut self) -> Option<(Time, E)>;

    /// Timestamp of the earliest pending event, if any.
    fn peek_time(&self) -> Option<Time>;

    /// Current simulation time: the timestamp of the last popped event.
    fn now(&self) -> Time;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether the queue has no pending events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (for simulator statistics).
    fn total_pushed(&self) -> u64;

    /// Total number of events ever popped (for simulator statistics).
    fn total_popped(&self) -> u64;

    /// Peak number of simultaneously pending events over the queue's
    /// lifetime.
    fn peak_len(&self) -> usize;
}

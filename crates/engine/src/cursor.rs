//! Per-node CPU cursors.
//!
//! In GhostSim each simulated node runs exactly one application rank (the
//! Red Storm / Catamount configuration the SC'07 study used), so every
//! node's CPU executes a strictly sequential series of intervals: compute
//! blocks, message-send overheads, message-receive processing. The
//! [`CpuCursor`] tracks the time up to which a node's CPU is committed and
//! enforces the monotonicity invariant that the noise models rely on (their
//! per-node state advances with a forward-only sweep).

use crate::time::Time;

/// Tracks how far a node's CPU timeline has been committed.
///
/// `busy_until` is the earliest instant at which new work may begin. All
/// reservations must begin at or after the current `busy_until`; this is a
/// structural invariant of the one-rank-per-node execution model, and
/// violating it indicates an executor bug, so [`CpuCursor::reserve`] panics
/// on it even in release builds.
#[derive(Debug, Clone, Default)]
pub struct CpuCursor {
    busy_until: Time,
    busy_total: Time,
}

impl CpuCursor {
    /// A fresh cursor: CPU free from time zero, no usage accumulated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest time new work may start on this CPU.
    #[inline]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Total busy time accumulated (compute + overheads + noise stolen while
    /// work was pending); used for utilization accounting.
    #[inline]
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }

    /// Reserve the CPU for the interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start < busy_until` (overlapping a prior reservation) or
    /// `end < start`.
    #[inline]
    pub fn reserve(&mut self, start: Time, end: Time) {
        assert!(
            start >= self.busy_until,
            "CPU reservation overlaps: start {} < busy_until {}",
            start,
            self.busy_until
        );
        assert!(end >= start, "reservation ends before it starts");
        self.busy_total += end - start;
        self.busy_until = end;
    }

    /// The start time a new reservation would get if requested at `t`:
    /// `max(t, busy_until)`.
    #[inline]
    pub fn start_at(&self, t: Time) -> Time {
        t.max(self.busy_until)
    }

    /// Fraction of `[0, horizon)` this CPU spent busy.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_total as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_accumulate() {
        let mut c = CpuCursor::new();
        c.reserve(0, 10);
        c.reserve(10, 15);
        c.reserve(20, 30);
        assert_eq!(c.busy_until(), 30);
        assert_eq!(c.busy_total(), 25);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_reservation_panics() {
        let mut c = CpuCursor::new();
        c.reserve(0, 10);
        c.reserve(5, 12);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_interval_panics() {
        let mut c = CpuCursor::new();
        c.reserve(10, 5);
    }

    #[test]
    fn empty_reservation_is_legal() {
        let mut c = CpuCursor::new();
        c.reserve(5, 5);
        assert_eq!(c.busy_until(), 5);
        assert_eq!(c.busy_total(), 0);
    }

    #[test]
    fn start_at_respects_busy_until() {
        let mut c = CpuCursor::new();
        c.reserve(0, 100);
        assert_eq!(c.start_at(50), 100);
        assert_eq!(c.start_at(150), 150);
    }

    #[test]
    fn utilization_fraction() {
        let mut c = CpuCursor::new();
        c.reserve(0, 25);
        c.reserve(50, 75);
        assert_eq!(c.utilization(100), 0.5);
        assert_eq!(c.utilization(0), 0.0);
    }
}

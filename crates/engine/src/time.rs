//! Simulated time and CPU work, in integer nanoseconds.
//!
//! GhostSim uses `u64` nanoseconds for both wall-clock simulation time and
//! CPU work amounts. Integer time keeps simulations bit-for-bit reproducible
//! and free of floating-point drift over long runs (a 10-second POP run at
//! 4096 ranks executes tens of millions of timing additions). At u64
//! resolution the simulator can represent ~584 years of nanoseconds, far more
//! than any experiment needs.

/// Simulated wall-clock time, in nanoseconds since simulation start.
pub type Time = u64;

/// An amount of CPU work, in nanoseconds of uninterrupted execution.
///
/// Work is what an application *needs*; time is what it *takes*. A noise
/// process maps `(start: Time, work: Work) -> completion: Time` with
/// `completion - start >= work`.
pub type Work = u64;

/// One nanosecond.
pub const NS: Time = 1;
/// One microsecond in nanoseconds.
pub const US: Time = 1_000;
/// One millisecond in nanoseconds.
pub const MS: Time = 1_000_000;
/// One second in nanoseconds.
pub const SEC: Time = 1_000_000_000;

/// Convert a time in seconds (floating point) to integer nanoseconds.
///
/// Rounds to the nearest nanosecond. Panics in debug builds on negative or
/// non-finite input.
#[inline]
pub fn from_secs_f64(secs: f64) -> Time {
    debug_assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
    (secs * SEC as f64).round() as Time
}

/// Convert integer nanoseconds to floating-point seconds (for reporting).
#[inline]
pub fn to_secs_f64(t: Time) -> f64 {
    t as f64 / SEC as f64
}

/// Convert integer nanoseconds to floating-point microseconds (for reporting).
#[inline]
pub fn to_micros_f64(t: Time) -> f64 {
    t as f64 / US as f64
}

/// Convert integer nanoseconds to floating-point milliseconds (for reporting).
#[inline]
pub fn to_millis_f64(t: Time) -> f64 {
    t as f64 / MS as f64
}

/// Render a time as a short human-readable string with an adaptive unit.
///
/// ```
/// use ghost_engine::time::{format_time, US, MS, SEC};
/// assert_eq!(format_time(500), "500ns");
/// assert_eq!(format_time(25 * US), "25.000us");
/// assert_eq!(format_time(2500 * US), "2.500ms");
/// assert_eq!(format_time(3 * SEC), "3.000s");
/// assert_eq!(format_time(1500 * MS), "1.500s");
/// ```
pub fn format_time(t: Time) -> String {
    if t < US {
        format!("{t}ns")
    } else if t < MS {
        format!("{:.3}us", to_micros_f64(t))
    } else if t < SEC {
        format!("{:.3}ms", to_millis_f64(t))
    } else {
        format!("{:.3}s", to_secs_f64(t))
    }
}

/// The frequency, in Hz, corresponding to a period of `t` nanoseconds.
///
/// Returns `f64::INFINITY` for a zero period.
#[inline]
pub fn period_to_hz(t: Time) -> f64 {
    if t == 0 {
        f64::INFINITY
    } else {
        SEC as f64 / t as f64
    }
}

/// The period, in nanoseconds, of a frequency in Hz (rounded to nearest ns).
///
/// Panics in debug builds on non-positive frequency.
#[inline]
pub fn hz_to_period(hz: f64) -> Time {
    debug_assert!(hz.is_finite() && hz > 0.0, "invalid frequency: {hz}");
    (SEC as f64 / hz).round() as Time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(US, 1_000 * NS);
        assert_eq!(MS, 1_000 * US);
        assert_eq!(SEC, 1_000 * MS);
    }

    #[test]
    fn secs_roundtrip() {
        for &s in &[0.0, 1.0, 0.5, 2.25e-6, 1234.567] {
            let t = from_secs_f64(s);
            let back = to_secs_f64(t);
            assert!((back - s).abs() < 1e-9, "{s} -> {t} -> {back}");
        }
    }

    #[test]
    fn sub_nanosecond_rounds_to_nearest() {
        assert_eq!(from_secs_f64(0.4e-9), 0);
        assert_eq!(from_secs_f64(0.6e-9), 1);
    }

    #[test]
    fn period_frequency_inverse() {
        for &hz in &[1.0, 10.0, 100.0, 1_000.0, 10_000.0] {
            let p = hz_to_period(hz);
            let back = period_to_hz(p);
            assert!((back - hz).abs() / hz < 1e-9, "{hz} -> {p} -> {back}");
        }
    }

    #[test]
    fn zero_period_is_infinite_frequency() {
        assert!(period_to_hz(0).is_infinite());
    }

    #[test]
    fn formatting_boundaries() {
        assert_eq!(format_time(0), "0ns");
        assert_eq!(format_time(999), "999ns");
        assert_eq!(format_time(1_000), "1.000us");
        assert_eq!(format_time(999_999), "999.999us");
        assert_eq!(format_time(1_000_000), "1.000ms");
        assert_eq!(format_time(SEC), "1.000s");
    }

    #[test]
    fn conversion_helpers() {
        assert_eq!(to_micros_f64(1500), 1.5);
        assert_eq!(to_millis_f64(2_500_000), 2.5);
    }
}

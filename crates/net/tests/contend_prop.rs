//! Property tests for the contention layer.
//!
//! * **Route validity** — every path any routing policy can materialize,
//!   on any generated topology shape, is a connected `src -> dst` walk made
//!   only of that topology's own link-graph edges (and a minimal path has
//!   exactly `hops` edges).
//! * **Conservation** — after an arbitrary transmit history, no channel is
//!   ever busy for longer than the link-occupancy horizon (a link cannot
//!   transmit for more time than has passed), and on minimal routes the
//!   extra delay charged to messages equals the queuing total in the stats.

use ghost_net::{
    ContendCfg, ContendState, Dragonfly, FatTree, Flat, PathKind, Routing, Topology, Torus3D,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Build one of the four topology families from plain integer draws
/// (`family` selects, `a`/`b`/`c` shape it at property-test scale).
fn build_topology(family: usize, a: usize, b: usize, c: usize) -> Box<dyn Topology> {
    match family % 4 {
        0 => Box::new(Flat::new(1 + a % 19)),
        1 => Box::new(Torus3D::new(1 + a % 3, 1 + b % 3, 1 + c % 3)),
        2 => Box::new(FatTree::new(1 + a % 23, 2 + b % 3)),
        _ => Box::new(Dragonfly::new(1 + a % 4, 1 + b % 3, 1 + c % 3)),
    }
}

/// Check one `(src, dst, kind)` path for shape and edge validity.
/// `hops_are_channels` is true only for the torus, where the latency hop
/// count and the channel count coincide (the other families route through
/// internal switch vertices that latency hops abstract away).
fn check_path(
    t: &dyn Topology,
    src: usize,
    dst: usize,
    kind: PathKind,
    hops_are_channels: bool,
) -> Result<(), TestCaseError> {
    let table = t.link_graph();
    let mut path = Vec::new();
    let mut route = Vec::new();
    t.path(src, dst, kind, &mut path);
    prop_assert_eq!(path.first().copied(), Some(src as u32), "{}", t.name());
    prop_assert_eq!(path.last().copied(), Some(dst as u32), "{}", t.name());
    if src == dst {
        prop_assert_eq!(path.len(), 1);
    }
    // Minimal routes are simple walks — no vertex repeats. (Valiant routes
    // may legitimately pass through a vertex twice en route to the salted
    // intermediate and back.)
    if kind == PathKind::Minimal {
        let mut seen: Vec<u32> = path.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), path.len(), "{}: cycle in {:?}", t.name(), &path);
    }
    if let Err((x, y)) = table.route(&path, &mut route) {
        return Err(TestCaseError::fail(format!(
            "{}: path edge {x}->{y} not in link graph",
            t.name()
        )));
    }
    if kind == PathKind::Minimal && hops_are_channels {
        prop_assert_eq!(
            route.len() as u32,
            t.hops(src, dst),
            "{}: minimal path length != hops({src},{dst})",
            t.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every route from every policy on every generated topology is a valid
    /// connected src->dst path over the topology's own channels.
    #[test]
    fn every_route_is_a_valid_connected_path(
        family in 0usize..4,
        a in 0usize..64, b in 0usize..64, c in 0usize..64,
        pair_seed in 0u64..1_000_000,
        salts in proptest::collection::vec(0u64..u64::MAX, 1..4),
    ) {
        let topo = build_topology(family, a, b, c);
        let n = topo.nodes();
        let hops_are_channels = family % 4 == 1; // torus only
        // A deterministic scatter of (src, dst) pairs, including src == dst.
        for i in 0..8u64 {
            let src = ((pair_seed.wrapping_mul(31).wrapping_add(i * 7)) % n as u64) as usize;
            let dst = ((pair_seed.wrapping_mul(17).wrapping_add(i * 13)) % n as u64) as usize;
            check_path(topo.as_ref(), src, dst, PathKind::Minimal, hops_are_channels)?;
            for &salt in &salts {
                check_path(topo.as_ref(), src, dst, PathKind::Valiant { salt }, false)?;
            }
        }
    }

    /// Conservation: a channel can never be busy for longer than the
    /// link-occupancy horizon, and on minimal routes the extra delay
    /// charged to messages is exactly the queuing total in the stats.
    #[test]
    fn busy_time_never_exceeds_the_horizon(
        family in 0usize..4,
        a in 0usize..64, b in 0usize..64, c in 0usize..64,
        link_mbps in 1u32..5_000,
        adaptive in proptest::bool::ANY,
        msgs in proptest::collection::vec(
            (0u64..u64::MAX, 1u64..2_000_000, 0u64..10_000_000),
            1..120
        ),
        seed in 0u64..u64::MAX,
    ) {
        let topo = build_topology(family, a, b, c);
        let n = topo.nodes();
        let routing = if adaptive { Routing::Ugal } else { Routing::Minimal };
        let cfg = ContendCfg { link_mbps, routing };
        let mut s = ContendState::new(topo.as_ref(), cfg, 50, seed);
        let mut now = 0u64;
        let mut minimal_extra = 0u64;
        for &(pair, bytes, dt) in &msgs {
            now += dt; // departures in nondecreasing time order
            let src = (pair % n as u64) as usize;
            let dst = ((pair >> 32) % n as u64) as usize;
            let extra = s.transmit(topo.as_ref(), src, dst, bytes, now);
            if routing == Routing::Minimal {
                minimal_extra += extra;
            }
        }
        let horizon = s.horizon();
        for (l, &busy) in s.busy().iter().enumerate() {
            prop_assert!(busy <= horizon, "link {l}: busy {busy} > horizon {horizon}");
        }
        let stats = s.stats(horizon.max(1));
        prop_assert!(stats.messages <= msgs.len() as u64);
        if routing == Routing::Minimal {
            // Minimal routes pay no detour price: all extra delay is wait.
            prop_assert_eq!(stats.queued_ns, minimal_extra);
            prop_assert_eq!(stats.nonminimal, 0);
        }
        // The wait histogram partitions the charged messages.
        prop_assert_eq!(stats.wait_hist.iter().sum::<u64>(), stats.messages);
    }
}

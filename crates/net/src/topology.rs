//! Machine topologies: node layout and hop distances.

/// A network topology: how many nodes exist and how many switch/router hops
/// separate any pair.
pub trait Topology: std::fmt::Debug + Send + Sync {
    /// Total node count.
    fn nodes(&self) -> usize;

    /// Hop count between two nodes (0 for `a == b`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if a node id is out of range.
    fn hops(&self, a: usize, b: usize) -> u32;

    /// Clone into a box (object-safe clone).
    fn clone_box(&self) -> Box<dyn Topology>;

    /// Short name for reports.
    fn name(&self) -> String;
}

impl Clone for Box<dyn Topology> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Idealized flat topology: every distinct pair is exactly one hop apart
/// (a single giant crossbar). The default for experiments that should not
/// depend on machine shape.
#[derive(Debug, Clone, Copy)]
pub struct Flat {
    nodes: usize,
}

impl Flat {
    /// A flat network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self { nodes }
    }
}

impl Topology for Flat {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.nodes && b < self.nodes, "node id out of range");
        u32::from(a != b)
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!("flat({})", self.nodes)
    }
}

/// A 3-D torus (Red Storm's mesh, with wraparound): node `i` sits at
/// coordinates `(i % x, (i / x) % y, i / (x*y))`; hop distance is the sum of
/// per-dimension wraparound distances (dimension-ordered routing).
#[derive(Debug, Clone, Copy)]
pub struct Torus3D {
    x: usize,
    y: usize,
    z: usize,
}

impl Torus3D {
    /// An `x * y * z` torus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus dimensions must be positive");
        Self { x, y, z }
    }

    /// The smallest torus of at least `n` nodes with near-cubic dimensions
    /// (used by scale sweeps so topology grows realistically with P).
    pub fn at_least(n: usize) -> Self {
        assert!(n > 0);
        let mut x = (n as f64).cbrt().floor() as usize;
        x = x.max(1);
        loop {
            let mut y = x;
            let mut z;
            loop {
                z = n.div_ceil(x * y);
                if z <= y {
                    break;
                }
                y += 1;
            }
            let t = Self::new(x, y.max(1), z.max(1));
            if t.nodes() >= n {
                return t;
            }
            x += 1;
        }
    }

    /// Coordinates of node `i`.
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        assert!(i < self.nodes(), "node id out of range");
        (i % self.x, (i / self.x) % self.y, i / (self.x * self.y))
    }

    /// Node id at coordinates.
    pub fn index(&self, c: (usize, usize, usize)) -> usize {
        assert!(c.0 < self.x && c.1 < self.y && c.2 < self.z);
        c.0 + c.1 * self.x + c.2 * self.x * self.y
    }

    fn dim_dist(a: usize, b: usize, extent: usize) -> u32 {
        let d = a.abs_diff(b);
        d.min(extent - d) as u32
    }

    /// The six nearest neighbors of node `i` (±1 in each dimension, with
    /// wraparound), in x−, x+, y−, y+, z−, z+ order. Neighbors coinciding
    /// with `i` (extent-1 dimensions) are included as returned by the torus
    /// arithmetic.
    pub fn neighbors(&self, i: usize) -> [usize; 6] {
        let (cx, cy, cz) = self.coords(i);
        [
            self.index(((cx + self.x - 1) % self.x, cy, cz)),
            self.index(((cx + 1) % self.x, cy, cz)),
            self.index((cx, (cy + self.y - 1) % self.y, cz)),
            self.index((cx, (cy + 1) % self.y, cz)),
            self.index((cx, cy, (cz + self.z - 1) % self.z)),
            self.index((cx, cy, (cz + 1) % self.z)),
        ]
    }
}

impl Topology for Torus3D {
    fn nodes(&self) -> usize {
        self.x * self.y * self.z
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        Self::dim_dist(ca.0, cb.0, self.x)
            + Self::dim_dist(ca.1, cb.1, self.y)
            + Self::dim_dist(ca.2, cb.2, self.z)
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!("torus3d({}x{}x{})", self.x, self.y, self.z)
    }
}

/// A three-level fat tree: nodes are grouped into leaf switches of `arity`
/// ports; leaf switches into pods of `arity` switches; pods under a core
/// layer. Hop counts: same node 0, same leaf 2, same pod 4, otherwise 6.
#[derive(Debug, Clone, Copy)]
pub struct FatTree {
    nodes: usize,
    arity: usize,
}

impl FatTree {
    /// A fat tree over `nodes` nodes with switch `arity`.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    pub fn new(nodes: usize, arity: usize) -> Self {
        assert!(arity > 0, "fat-tree arity must be positive");
        Self { nodes, arity }
    }

    fn leaf(&self, i: usize) -> usize {
        i / self.arity
    }

    fn pod(&self, i: usize) -> usize {
        self.leaf(i) / self.arity
    }
}

impl Topology for FatTree {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.nodes && b < self.nodes, "node id out of range");
        if a == b {
            0
        } else if self.leaf(a) == self.leaf(b) {
            2
        } else if self.pod(a) == self.pod(b) {
            4
        } else {
            6
        }
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!("fattree({}, arity {})", self.nodes, self.arity)
    }
}

/// A dragonfly topology: `groups` of `routers_per_group` routers, each
/// hosting `nodes_per_router` nodes. Minimal routing hop model: same router
/// 1 hop; same group 2 hops (one local link); different groups 4 hops
/// (local, global, local, injection).
#[derive(Debug, Clone, Copy)]
pub struct Dragonfly {
    groups: usize,
    routers_per_group: usize,
    nodes_per_router: usize,
}

impl Dragonfly {
    /// A dragonfly with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(groups: usize, routers_per_group: usize, nodes_per_router: usize) -> Self {
        assert!(
            groups > 0 && routers_per_group > 0 && nodes_per_router > 0,
            "dragonfly dimensions must be positive"
        );
        Self {
            groups,
            routers_per_group,
            nodes_per_router,
        }
    }

    /// A balanced dragonfly (a = 2p, g = a*h heuristic simplified to a
    /// near-square shape) of at least `n` nodes.
    pub fn at_least(n: usize) -> Self {
        assert!(n > 0);
        let mut p = 1;
        loop {
            let a = 2 * p;
            let g = a + 1;
            let d = Self::new(g, a, p);
            if d.nodes() >= n {
                return d;
            }
            p += 1;
        }
    }

    fn router(&self, node: usize) -> usize {
        node / self.nodes_per_router
    }

    fn group(&self, node: usize) -> usize {
        self.router(node) / self.routers_per_group
    }
}

impl Topology for Dragonfly {
    fn nodes(&self) -> usize {
        self.groups * self.routers_per_group * self.nodes_per_router
    }

    fn hops(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.nodes() && b < self.nodes(), "node id out of range");
        if a == b {
            0
        } else if self.router(a) == self.router(b) {
            1
        } else if self.group(a) == self.group(b) {
            2
        } else {
            4
        }
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!(
            "dragonfly({}g x {}r x {}n)",
            self.groups, self.routers_per_group, self.nodes_per_router
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flat_hops() {
        let t = Flat::new(8);
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.hops(3, 3), 0);
        assert_eq!(t.hops(0, 7), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_rejects_bad_id() {
        Flat::new(4).hops(0, 4);
    }

    #[test]
    fn torus_coords_roundtrip() {
        let t = Torus3D::new(4, 3, 2);
        for i in 0..t.nodes() {
            assert_eq!(t.index(t.coords(i)), i);
        }
    }

    #[test]
    fn torus_hops_known_values() {
        let t = Torus3D::new(4, 4, 4);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 1); // +x
        assert_eq!(t.hops(0, 3), 1); // wraparound x: distance min(3, 1)
        assert_eq!(t.hops(0, 2), 2); // halfway around x
        assert_eq!(t.hops(0, t.index((2, 2, 2))), 6);
    }

    #[test]
    fn torus_neighbors_are_one_hop() {
        let t = Torus3D::new(4, 4, 4);
        for i in [0, 13, 63] {
            for n in t.neighbors(i) {
                assert_eq!(t.hops(i, n), 1, "{i} -> {n}");
            }
        }
    }

    #[test]
    fn torus_at_least_covers_request() {
        for n in [1, 2, 7, 8, 64, 100, 1000, 4096] {
            let t = Torus3D::at_least(n);
            assert!(t.nodes() >= n, "{n} -> {:?} ({})", t, t.nodes());
            // Not wasteful: at most ~3x overshoot for awkward sizes.
            assert!(t.nodes() <= 3 * n + 8, "{n} -> {} nodes", t.nodes());
        }
    }

    #[test]
    fn fat_tree_hop_ladder() {
        let t = FatTree::new(64, 4);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 3), 2); // same leaf (nodes 0..4)
        assert_eq!(t.hops(0, 15), 4); // same pod (nodes 0..16)
        assert_eq!(t.hops(0, 63), 6); // across pods
    }

    #[test]
    fn dragonfly_hop_ladder() {
        let d = Dragonfly::new(3, 4, 2); // 24 nodes
        assert_eq!(d.nodes(), 24);
        assert_eq!(d.hops(0, 0), 0);
        assert_eq!(d.hops(0, 1), 1); // same router
        assert_eq!(d.hops(0, 2), 2); // same group, next router
        assert_eq!(d.hops(0, 8), 4); // next group
    }

    #[test]
    fn dragonfly_at_least_covers() {
        for n in [1, 10, 64, 500, 2048] {
            let d = Dragonfly::at_least(n);
            assert!(d.nodes() >= n, "{n} -> {}", d.nodes());
        }
    }

    #[test]
    fn dragonfly_symmetric_hops() {
        let d = Dragonfly::new(4, 4, 4);
        for a in [0, 17, 43, 63] {
            for b in [0, 17, 43, 63] {
                assert_eq!(d.hops(a, b), d.hops(b, a));
            }
        }
    }

    #[test]
    fn boxed_topology_clones() {
        let b: Box<dyn Topology> = Box::new(Torus3D::new(2, 2, 2));
        let c = b.clone();
        assert_eq!(c.nodes(), 8);
        assert_eq!(c.name(), "torus3d(2x2x2)");
    }

    proptest! {
        #[test]
        fn torus_hops_symmetric(
            x in 1usize..6, y in 1usize..6, z in 1usize..6,
            a in 0usize..200, b in 0usize..200,
        ) {
            let t = Torus3D::new(x, y, z);
            let n = t.nodes();
            let (a, b) = (a % n, b % n);
            prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        }

        #[test]
        fn torus_triangle_inequality(
            x in 1usize..5, y in 1usize..5, z in 1usize..5,
            a in 0usize..200, b in 0usize..200, c in 0usize..200,
        ) {
            let t = Torus3D::new(x, y, z);
            let n = t.nodes();
            let (a, b, c) = (a % n, b % n, c % n);
            prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        }

        #[test]
        fn torus_identity_of_indiscernibles(
            x in 1usize..5, y in 1usize..5, z in 1usize..5,
            a in 0usize..200,
        ) {
            let t = Torus3D::new(x, y, z);
            let a = a % t.nodes();
            prop_assert_eq!(t.hops(a, a), 0);
        }

        #[test]
        fn fat_tree_symmetric(
            n in 1usize..500, arity in 1usize..16,
            a in 0usize..500, b in 0usize..500,
        ) {
            let t = FatTree::new(n, arity);
            let (a, b) = (a % n, b % n);
            prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        }
    }
}

//! Machine topologies: node layout, hop distances, and channel graphs.

use crate::contend::{LinkTable, PathKind};

/// A node id was outside a topology's `0..nodes()` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyError {
    /// The offending node id.
    pub node: usize,
    /// The topology's node count.
    pub nodes: usize,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node id {} out of range for topology of {} nodes",
            self.node, self.nodes
        )
    }
}

impl std::error::Error for TopologyError {}

/// A network topology: how many nodes exist, how many switch/router hops
/// separate any pair, and (for the contention model) the explicit channel
/// graph connecting them.
pub trait Topology: std::fmt::Debug + Send + Sync {
    /// Total node count.
    fn nodes(&self) -> usize;

    /// Hop count between two nodes (0 for `a == b`), or an error if either
    /// id is out of range. This is the executor-facing form: untrusted node
    /// ids surface as a typed error instead of a panic.
    fn try_hops(&self, a: usize, b: usize) -> Result<u32, TopologyError>;

    /// Hop count between two nodes (0 for `a == b`).
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range; [`Topology::try_hops`] is the
    /// non-panicking form.
    fn hops(&self, a: usize, b: usize) -> u32 {
        self.try_hops(a, b).expect("node id out of range")
    }

    /// Clone into a box (object-safe clone).
    fn clone_box(&self) -> Box<dyn Topology>;

    /// Short name for reports.
    fn name(&self) -> String;

    /// The explicit channel graph used by the contention model
    /// ([`crate::contend`]). Vertices `0..nodes()` are the hosts;
    /// implementations may add internal switch/router vertices above that
    /// range. The default is a star: one central crossbar vertex with an
    /// injection and an ejection channel per host — every pair of flows
    /// sharing an endpoint shares a channel, nothing else does.
    fn link_graph(&self) -> LinkTable {
        let n = self.nodes() as u32;
        let mut t = LinkTable::new(n + 1);
        for i in 0..n {
            t.add(i, n, 1);
            t.add(n, i, 1);
        }
        t
    }

    /// Append the vertex path from `src` to `dst` under `kind` to `out`
    /// (starting with `src`, ending with `dst`; just `[src]` when equal).
    /// Every consecutive pair of emitted vertices must be an edge of
    /// [`Topology::link_graph`]. The default routes through the star hub;
    /// the star has no distinct alternative path, so both kinds coincide.
    ///
    /// # Panics
    ///
    /// May panic if a node id is out of range.
    fn path(&self, src: usize, dst: usize, _kind: PathKind, out: &mut Vec<u32>) {
        let n = self.nodes();
        assert!(src < n && dst < n, "node id out of range");
        out.push(src as u32);
        if src != dst {
            out.push(n as u32);
            out.push(dst as u32);
        }
    }
}

impl Clone for Box<dyn Topology> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Validate both endpoints against a node count.
fn check_ids(nodes: usize, a: usize, b: usize) -> Result<(), TopologyError> {
    for node in [a, b] {
        if node >= nodes {
            return Err(TopologyError { node, nodes });
        }
    }
    Ok(())
}

/// Idealized flat topology: every distinct pair is exactly one hop apart
/// (a single giant crossbar). The default for experiments that should not
/// depend on machine shape.
#[derive(Debug, Clone, Copy)]
pub struct Flat {
    nodes: usize,
}

impl Flat {
    /// A flat network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self { nodes }
    }
}

impl Topology for Flat {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn try_hops(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        check_ids(self.nodes, a, b)?;
        Ok(u32::from(a != b))
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!("flat({})", self.nodes)
    }
}

/// A 3-D torus (Red Storm's mesh, with wraparound): node `i` sits at
/// coordinates `(i % x, (i / x) % y, i / (x*y))`; hop distance is the sum of
/// per-dimension wraparound distances (dimension-ordered routing).
#[derive(Debug, Clone, Copy)]
pub struct Torus3D {
    x: usize,
    y: usize,
    z: usize,
}

impl Torus3D {
    /// An `x * y * z` torus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus dimensions must be positive");
        Self { x, y, z }
    }

    /// The smallest torus of at least `n` nodes with near-cubic dimensions
    /// (used by scale sweeps so topology grows realistically with P).
    pub fn at_least(n: usize) -> Self {
        assert!(n > 0);
        let mut x = (n as f64).cbrt().floor() as usize;
        x = x.max(1);
        loop {
            let mut y = x;
            let mut z;
            loop {
                z = n.div_ceil(x * y);
                if z <= y {
                    break;
                }
                y += 1;
            }
            let t = Self::new(x, y.max(1), z.max(1));
            if t.nodes() >= n {
                return t;
            }
            x += 1;
        }
    }

    /// Coordinates of node `i`.
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        assert!(i < self.nodes(), "node id out of range");
        (i % self.x, (i / self.x) % self.y, i / (self.x * self.y))
    }

    /// Node id at coordinates.
    pub fn index(&self, c: (usize, usize, usize)) -> usize {
        assert!(c.0 < self.x && c.1 < self.y && c.2 < self.z);
        c.0 + c.1 * self.x + c.2 * self.x * self.y
    }

    fn dim_dist(a: usize, b: usize, extent: usize) -> u32 {
        let d = a.abs_diff(b);
        d.min(extent - d) as u32
    }

    /// The six nearest neighbors of node `i` (±1 in each dimension, with
    /// wraparound), in x−, x+, y−, y+, z−, z+ order. Neighbors coinciding
    /// with `i` (extent-1 dimensions) are included as returned by the torus
    /// arithmetic.
    pub fn neighbors(&self, i: usize) -> [usize; 6] {
        let (cx, cy, cz) = self.coords(i);
        [
            self.index(((cx + self.x - 1) % self.x, cy, cz)),
            self.index(((cx + 1) % self.x, cy, cz)),
            self.index((cx, (cy + self.y - 1) % self.y, cz)),
            self.index((cx, (cy + 1) % self.y, cz)),
            self.index((cx, cy, (cz + self.z - 1) % self.z)),
            self.index((cx, cy, (cz + 1) % self.z)),
        ]
    }

    /// Dimension-ordered wrap-aware walk from `from` to `to`, pushing every
    /// intermediate node (and the destination, but not the start) onto
    /// `out`. Ties around an even extent break toward +.
    fn walk(&self, from: (usize, usize, usize), to: (usize, usize, usize), out: &mut Vec<u32>) {
        let mut c = [from.0, from.1, from.2];
        let to = [to.0, to.1, to.2];
        let ext = [self.x, self.y, self.z];
        for d in 0..3 {
            while c[d] != to[d] {
                let fwd = (to[d] + ext[d] - c[d]) % ext[d];
                c[d] = if fwd <= ext[d] - fwd {
                    (c[d] + 1) % ext[d]
                } else {
                    (c[d] + ext[d] - 1) % ext[d]
                };
                out.push(self.index((c[0], c[1], c[2])) as u32);
            }
        }
    }
}

impl Topology for Torus3D {
    fn nodes(&self) -> usize {
        self.x * self.y * self.z
    }

    fn try_hops(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        check_ids(self.nodes(), a, b)?;
        let ca = self.coords(a);
        let cb = self.coords(b);
        Ok(Self::dim_dist(ca.0, cb.0, self.x)
            + Self::dim_dist(ca.1, cb.1, self.y)
            + Self::dim_dist(ca.2, cb.2, self.z))
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!("torus3d({}x{}x{})", self.x, self.y, self.z)
    }

    fn link_graph(&self) -> LinkTable {
        let n = self.nodes();
        let mut t = LinkTable::new(n as u32);
        for i in 0..n {
            for nb in self.neighbors(i) {
                if nb != i {
                    t.add(i as u32, nb as u32, 1);
                }
            }
        }
        t
    }

    fn path(&self, src: usize, dst: usize, kind: PathKind, out: &mut Vec<u32>) {
        let n = self.nodes();
        assert!(src < n && dst < n, "node id out of range");
        out.push(src as u32);
        if src == dst {
            return;
        }
        match kind {
            PathKind::Minimal => self.walk(self.coords(src), self.coords(dst), out),
            PathKind::Valiant { salt } => {
                let mid = (salt % n as u64) as usize;
                self.walk(self.coords(src), self.coords(mid), out);
                self.walk(self.coords(mid), self.coords(dst), out);
            }
        }
    }
}

/// A three-level fat tree: nodes are grouped into leaf switches of `arity`
/// ports; leaf switches into pods of `arity` switches; pods under a core
/// layer. Hop counts: same node 0, same leaf 2, same pod 4, otherwise 6.
#[derive(Debug, Clone, Copy)]
pub struct FatTree {
    nodes: usize,
    arity: usize,
}

impl FatTree {
    /// A fat tree over `nodes` nodes with switch `arity`.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    pub fn new(nodes: usize, arity: usize) -> Self {
        assert!(arity > 0, "fat-tree arity must be positive");
        Self { nodes, arity }
    }

    fn leaf(&self, i: usize) -> usize {
        i / self.arity
    }

    fn pod(&self, i: usize) -> usize {
        self.leaf(i) / self.arity
    }

    /// Number of leaf switches.
    fn leaves(&self) -> usize {
        self.nodes.div_ceil(self.arity).max(1)
    }

    /// Number of pod switches.
    fn pods(&self) -> usize {
        self.leaves().div_ceil(self.arity).max(1)
    }

    /// Vertex id of leaf switch `l` (hosts occupy `0..nodes`).
    fn leaf_vertex(&self, l: usize) -> u32 {
        (self.nodes + l) as u32
    }

    /// Vertex id of pod switch `p`.
    fn pod_vertex(&self, p: usize) -> u32 {
        (self.nodes + self.leaves() + p) as u32
    }

    /// Vertex id of the single core switch.
    fn core_vertex(&self) -> u32 {
        (self.nodes + self.leaves() + self.pods()) as u32
    }
}

impl Topology for FatTree {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn try_hops(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        check_ids(self.nodes, a, b)?;
        Ok(if a == b {
            0
        } else if self.leaf(a) == self.leaf(b) {
            2
        } else if self.pod(a) == self.pod(b) {
            4
        } else {
            6
        })
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!("fattree({}, arity {})", self.nodes, self.arity)
    }

    fn link_graph(&self) -> LinkTable {
        // Hosts, then leaf switches, then pod switches, then one core
        // vertex; upward links fatten by one arity factor per level, the
        // classic fat-tree bandwidth taper compensation.
        let mut t = LinkTable::new(self.core_vertex() + 1);
        let fat = self.arity as u32;
        for h in 0..self.nodes {
            let leaf = self.leaf_vertex(self.leaf(h));
            t.add(h as u32, leaf, 1);
            t.add(leaf, h as u32, 1);
        }
        for l in 0..self.leaves() {
            let pod = self.pod_vertex(l / self.arity);
            t.add(self.leaf_vertex(l), pod, fat);
            t.add(pod, self.leaf_vertex(l), fat);
        }
        for p in 0..self.pods() {
            t.add(self.pod_vertex(p), self.core_vertex(), fat * fat);
            t.add(self.core_vertex(), self.pod_vertex(p), fat * fat);
        }
        t
    }

    fn path(&self, src: usize, dst: usize, _kind: PathKind, out: &mut Vec<u32>) {
        // Every up-down path through a (collapsed) core is equivalent, so
        // Valiant coincides with minimal.
        assert!(src < self.nodes && dst < self.nodes, "node id out of range");
        out.push(src as u32);
        if src == dst {
            return;
        }
        out.push(self.leaf_vertex(self.leaf(src)));
        if self.leaf(src) != self.leaf(dst) {
            if self.pod(src) == self.pod(dst) {
                out.push(self.pod_vertex(self.pod(src)));
            } else {
                out.push(self.pod_vertex(self.pod(src)));
                out.push(self.core_vertex());
                out.push(self.pod_vertex(self.pod(dst)));
            }
            out.push(self.leaf_vertex(self.leaf(dst)));
        }
        out.push(dst as u32);
    }
}

/// A dragonfly topology: `groups` of `routers_per_group` routers, each
/// hosting `nodes_per_router` nodes. Minimal routing hop model: same router
/// 1 hop; same group 2 hops (one local link); different groups 4 hops
/// (local, global, local, injection).
#[derive(Debug, Clone, Copy)]
pub struct Dragonfly {
    groups: usize,
    routers_per_group: usize,
    nodes_per_router: usize,
}

impl Dragonfly {
    /// A dragonfly with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(groups: usize, routers_per_group: usize, nodes_per_router: usize) -> Self {
        assert!(
            groups > 0 && routers_per_group > 0 && nodes_per_router > 0,
            "dragonfly dimensions must be positive"
        );
        Self {
            groups,
            routers_per_group,
            nodes_per_router,
        }
    }

    /// A balanced dragonfly (a = 2p, g = a*h heuristic simplified to a
    /// near-square shape) of at least `n` nodes.
    pub fn at_least(n: usize) -> Self {
        assert!(n > 0);
        let mut p = 1;
        loop {
            let a = 2 * p;
            let g = a + 1;
            let d = Self::new(g, a, p);
            if d.nodes() >= n {
                return d;
            }
            p += 1;
        }
    }

    fn router(&self, node: usize) -> usize {
        node / self.nodes_per_router
    }

    fn group(&self, node: usize) -> usize {
        self.router(node) / self.routers_per_group
    }

    /// Local index (within group `ga`) of the router hosting the global
    /// channel toward group `gb`: channels to the other `groups - 1` groups
    /// are dealt round-robin over the group's routers.
    fn gateway(&self, ga: usize, gb: usize) -> usize {
        debug_assert_ne!(ga, gb);
        (gb - usize::from(gb > ga)) % self.routers_per_group
    }

    /// Global router index of local router `l` in group `g`.
    fn router_of(&self, g: usize, l: usize) -> usize {
        g * self.routers_per_group + l
    }

    /// Vertex id of global router `r` (hosts occupy `0..nodes()`).
    fn router_vertex(&self, r: usize) -> u32 {
        (self.nodes() + r) as u32
    }

    /// Push the router-level walk from router `ra` to router `rb` onto
    /// `out`, excluding `ra` itself: local hop to the egress gateway if
    /// needed, the global channel, then a local hop to `rb` if needed.
    fn router_walk(&self, ra: usize, rb: usize, out: &mut Vec<u32>) {
        if ra == rb {
            return;
        }
        let (ga, gb) = (ra / self.routers_per_group, rb / self.routers_per_group);
        if ga == gb {
            out.push(self.router_vertex(rb));
            return;
        }
        let a_out = self.router_of(ga, self.gateway(ga, gb));
        let b_in = self.router_of(gb, self.gateway(gb, ga));
        if a_out != ra {
            out.push(self.router_vertex(a_out));
        }
        out.push(self.router_vertex(b_in));
        if rb != b_in {
            out.push(self.router_vertex(rb));
        }
    }
}

impl Topology for Dragonfly {
    fn nodes(&self) -> usize {
        self.groups * self.routers_per_group * self.nodes_per_router
    }

    fn try_hops(&self, a: usize, b: usize) -> Result<u32, TopologyError> {
        check_ids(self.nodes(), a, b)?;
        Ok(if a == b {
            0
        } else if self.router(a) == self.router(b) {
            1
        } else if self.group(a) == self.group(b) {
            2
        } else {
            4
        })
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(*self)
    }

    fn name(&self) -> String {
        format!(
            "dragonfly({}g x {}r x {}n)",
            self.groups, self.routers_per_group, self.nodes_per_router
        )
    }

    fn link_graph(&self) -> LinkTable {
        let n = self.nodes();
        let routers = self.groups * self.routers_per_group;
        let mut t = LinkTable::new((n + routers) as u32);
        // Injection/ejection channels host <-> its router.
        for h in 0..n {
            let r = self.router_vertex(self.router(h));
            t.add(h as u32, r, 1);
            t.add(r, h as u32, 1);
        }
        // Local channels: all-to-all within a group.
        for g in 0..self.groups {
            for la in 0..self.routers_per_group {
                for lb in 0..self.routers_per_group {
                    if la != lb {
                        t.add(
                            self.router_vertex(self.router_of(g, la)),
                            self.router_vertex(self.router_of(g, lb)),
                            1,
                        );
                    }
                }
            }
        }
        // Global channels: one per ordered group pair, hosted by the
        // round-robin gateway router on each side.
        for ga in 0..self.groups {
            for gb in 0..self.groups {
                if ga != gb {
                    t.add(
                        self.router_vertex(self.router_of(ga, self.gateway(ga, gb))),
                        self.router_vertex(self.router_of(gb, self.gateway(gb, ga))),
                        1,
                    );
                }
            }
        }
        t
    }

    fn path(&self, src: usize, dst: usize, kind: PathKind, out: &mut Vec<u32>) {
        let n = self.nodes();
        assert!(src < n && dst < n, "node id out of range");
        out.push(src as u32);
        if src == dst {
            return;
        }
        let (rs, rd) = (self.router(src), self.router(dst));
        out.push(self.router_vertex(rs));
        match kind {
            PathKind::Minimal => self.router_walk(rs, rd, out),
            PathKind::Valiant { salt } => {
                let gi = (salt % self.groups as u64) as usize;
                if gi == rs / self.routers_per_group || gi == rd / self.routers_per_group {
                    // Detouring through an endpoint group is no detour.
                    self.router_walk(rs, rd, out);
                } else {
                    let rpg = self.routers_per_group as u64;
                    let rm = self.router_of(gi, ((salt / self.groups as u64) % rpg) as usize);
                    self.router_walk(rs, rm, out);
                    self.router_walk(rm, rd, out);
                }
            }
        }
        out.push(dst as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flat_hops() {
        let t = Flat::new(8);
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.hops(3, 3), 0);
        assert_eq!(t.hops(0, 7), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_rejects_bad_id() {
        Flat::new(4).hops(0, 4);
    }

    #[test]
    fn torus_coords_roundtrip() {
        let t = Torus3D::new(4, 3, 2);
        for i in 0..t.nodes() {
            assert_eq!(t.index(t.coords(i)), i);
        }
    }

    #[test]
    fn torus_hops_known_values() {
        let t = Torus3D::new(4, 4, 4);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 1); // +x
        assert_eq!(t.hops(0, 3), 1); // wraparound x: distance min(3, 1)
        assert_eq!(t.hops(0, 2), 2); // halfway around x
        assert_eq!(t.hops(0, t.index((2, 2, 2))), 6);
    }

    #[test]
    fn torus_neighbors_are_one_hop() {
        let t = Torus3D::new(4, 4, 4);
        for i in [0, 13, 63] {
            for n in t.neighbors(i) {
                assert_eq!(t.hops(i, n), 1, "{i} -> {n}");
            }
        }
    }

    #[test]
    fn torus_at_least_covers_request() {
        for n in [1, 2, 7, 8, 64, 100, 1000, 4096] {
            let t = Torus3D::at_least(n);
            assert!(t.nodes() >= n, "{n} -> {:?} ({})", t, t.nodes());
            // Not wasteful: at most ~3x overshoot for awkward sizes.
            assert!(t.nodes() <= 3 * n + 8, "{n} -> {} nodes", t.nodes());
        }
    }

    #[test]
    fn fat_tree_hop_ladder() {
        let t = FatTree::new(64, 4);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 3), 2); // same leaf (nodes 0..4)
        assert_eq!(t.hops(0, 15), 4); // same pod (nodes 0..16)
        assert_eq!(t.hops(0, 63), 6); // across pods
    }

    #[test]
    fn dragonfly_hop_ladder() {
        let d = Dragonfly::new(3, 4, 2); // 24 nodes
        assert_eq!(d.nodes(), 24);
        assert_eq!(d.hops(0, 0), 0);
        assert_eq!(d.hops(0, 1), 1); // same router
        assert_eq!(d.hops(0, 2), 2); // same group, next router
        assert_eq!(d.hops(0, 8), 4); // next group
    }

    #[test]
    fn dragonfly_at_least_covers() {
        for n in [1, 10, 64, 500, 2048] {
            let d = Dragonfly::at_least(n);
            assert!(d.nodes() >= n, "{n} -> {}", d.nodes());
        }
    }

    #[test]
    fn dragonfly_symmetric_hops() {
        let d = Dragonfly::new(4, 4, 4);
        for a in [0, 17, 43, 63] {
            for b in [0, 17, 43, 63] {
                assert_eq!(d.hops(a, b), d.hops(b, a));
            }
        }
    }

    /// Every emitted path must start at src, end at dst, and traverse only
    /// link-graph edges.
    fn assert_paths_valid(t: &dyn Topology, kind: PathKind) {
        let table = t.link_graph();
        let n = t.nodes();
        let mut path = Vec::new();
        let mut route = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                path.clear();
                route.clear();
                t.path(src, dst, kind, &mut path);
                assert_eq!(path.first(), Some(&(src as u32)), "{}", t.name());
                assert_eq!(path.last(), Some(&(dst as u32)), "{}", t.name());
                if src == dst {
                    assert_eq!(path.len(), 1);
                }
                table
                    .route(&path, &mut route)
                    .unwrap_or_else(|(a, b)| panic!("{}: {a}->{b} not an edge", t.name()));
            }
        }
    }

    #[test]
    fn all_topologies_emit_valid_paths() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Flat::new(6)),
            Box::new(Torus3D::new(3, 2, 2)),
            Box::new(FatTree::new(18, 3)),
            Box::new(Dragonfly::new(3, 2, 2)),
        ];
        for t in &topos {
            assert_paths_valid(t.as_ref(), PathKind::Minimal);
            for salt in [0, 1, 7, 0xdead_beef] {
                assert_paths_valid(t.as_ref(), PathKind::Valiant { salt });
            }
        }
    }

    #[test]
    fn minimal_path_matches_hop_scale() {
        // On the torus the minimal vertex path has exactly `hops` edges.
        let t = Torus3D::new(4, 4, 2);
        let mut path = Vec::new();
        for (a, b) in [(0, 5), (3, 12), (0, 31)] {
            path.clear();
            t.path(a, b, PathKind::Minimal, &mut path);
            assert_eq!(path.len() as u32 - 1, t.hops(a, b), "{a}->{b}");
        }
    }

    #[test]
    fn try_hops_reports_out_of_range() {
        let t = Flat::new(4);
        assert_eq!(t.try_hops(0, 3), Ok(1));
        let err = t.try_hops(0, 9).expect_err("out of range accepted");
        assert_eq!(err.node, 9);
        assert_eq!(err.nodes, 4);
        assert!(err.to_string().contains("out of range"));
        assert!(Torus3D::new(2, 2, 2).try_hops(8, 0).is_err());
        assert!(FatTree::new(8, 2).try_hops(0, 8).is_err());
        assert!(Dragonfly::new(2, 2, 2).try_hops(0, 8).is_err());
    }

    #[test]
    fn boxed_topology_clones() {
        let b: Box<dyn Topology> = Box::new(Torus3D::new(2, 2, 2));
        let c = b.clone();
        assert_eq!(c.nodes(), 8);
        assert_eq!(c.name(), "torus3d(2x2x2)");
    }

    proptest! {
        #[test]
        fn torus_hops_symmetric(
            x in 1usize..6, y in 1usize..6, z in 1usize..6,
            a in 0usize..200, b in 0usize..200,
        ) {
            let t = Torus3D::new(x, y, z);
            let n = t.nodes();
            let (a, b) = (a % n, b % n);
            prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        }

        #[test]
        fn torus_triangle_inequality(
            x in 1usize..5, y in 1usize..5, z in 1usize..5,
            a in 0usize..200, b in 0usize..200, c in 0usize..200,
        ) {
            let t = Torus3D::new(x, y, z);
            let n = t.nodes();
            let (a, b, c) = (a % n, b % n, c % n);
            prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        }

        #[test]
        fn torus_identity_of_indiscernibles(
            x in 1usize..5, y in 1usize..5, z in 1usize..5,
            a in 0usize..200,
        ) {
            let t = Torus3D::new(x, y, z);
            let a = a % t.nodes();
            prop_assert_eq!(t.hops(a, a), 0);
        }

        #[test]
        fn fat_tree_symmetric(
            n in 1usize..500, arity in 1usize..16,
            a in 0usize..500, b in 0usize..500,
        ) {
            let t = FatTree::new(n, arity);
            let (a, b) = (a % n, b % n);
            prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        }
    }
}

//! Link-capacity contention on top of the LogGP model.
//!
//! The base [`crate::Network`] charges every message the full LogGP cost as
//! if it had the wire to itself. This module adds the missing piece: each
//! topology exposes an explicit channel graph ([`LinkTable`]), every message
//! is routed over a concrete sequence of links ([`Topology::path`]), and
//! each link is a FIFO server with an integer capacity. When two messages
//! want the same channel at the same time, the later one queues — the
//! queuing delay (plus any non-minimal detour cost) is returned to the DES
//! core and added to the message's arrival time.
//!
//! Routing is chosen per run by [`Routing`]:
//!
//! * [`Routing::Minimal`] always takes the shortest path.
//! * [`Routing::Ugal`] compares, per message, the estimated queue-plus-
//!   detour cost of the minimal path against a Valiant-style randomized
//!   alternative ([`PathKind::Valiant`]) and takes the cheaper one, with
//!   ties going to minimal. Under zero load both estimates are the detour
//!   cost alone, so UGAL degenerates to minimal routing and charges nothing
//!   — the zero-contention configuration stays byte-identical to the plain
//!   LogGP model.
//!
//! All bookkeeping is integer arithmetic on nanoseconds, so runs remain
//! exactly reproducible across engines and `--parallel` (the executor
//! charges links in the deterministic sequential pop order).
//!
//! [`Topology::path`]: crate::topology::Topology::path

use ghost_obs::record::NetStats;

use crate::topology::Topology;

/// Index of a directed channel in a [`LinkTable`].
pub type LinkId = u32;

/// Per-scenario routing policy (integer-only, `Eq + Hash` so it can sit in
/// cache-key specs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Routing {
    /// Always take the shortest path.
    #[default]
    Minimal,
    /// UGAL-style adaptive routing: per message, take the Valiant detour
    /// when its estimated queue+detour cost beats the minimal path.
    Ugal,
}

impl Routing {
    /// Short name for reports and CLI round-trips.
    pub fn name(self) -> &'static str {
        match self {
            Routing::Minimal => "minimal",
            Routing::Ugal => "ugal",
        }
    }
}

/// Which concrete path to materialize for a (src, dst) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// The shortest path (what [`Topology::hops`] counts).
    ///
    /// [`Topology::hops`]: crate::topology::Topology::hops
    Minimal,
    /// A Valiant-style randomized path through an intermediate picked from
    /// `salt` (deterministic per message). Topologies without a useful
    /// detour (e.g. a fat tree, where every up-down path is equivalent)
    /// may return the minimal path.
    Valiant {
        /// Deterministic per-message randomness for intermediate choice.
        salt: u64,
    },
}

/// One directed channel of the link graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Source vertex (host id below `Topology::nodes()`, internal switch
    /// vertex at or above it).
    pub from: u32,
    /// Destination vertex.
    pub to: u32,
    /// Capacity multiplier: a link of capacity `c` serializes bytes `c`
    /// times faster than the base per-link bandwidth (fat upward tree
    /// links, for example).
    pub cap: u32,
}

/// The explicit channel graph of a topology: vertices are hosts plus any
/// internal switch/router vertices, edges are directed channels with an
/// integer capacity.
#[derive(Debug, Clone, Default)]
pub struct LinkTable {
    links: Vec<Link>,
    index: std::collections::HashMap<(u32, u32), LinkId>,
    vertices: u32,
}

impl LinkTable {
    /// An empty table over `vertices` vertices.
    pub fn new(vertices: u32) -> Self {
        Self {
            links: Vec::new(),
            index: std::collections::HashMap::new(),
            vertices,
        }
    }

    /// Add a directed channel, returning its id. Adding an existing edge is
    /// idempotent (the first capacity wins), so topologies with degenerate
    /// extents need no special casing. Self-loops are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either vertex is out of range.
    pub fn add(&mut self, from: u32, to: u32, cap: u32) -> LinkId {
        assert!(from != to, "self-loop channel {from}->{to}");
        assert!(
            from < self.vertices && to < self.vertices,
            "channel {from}->{to} beyond {} vertices",
            self.vertices
        );
        assert!(cap > 0, "channel {from}->{to} with zero capacity");
        if let Some(&id) = self.index.get(&(from, to)) {
            return id;
        }
        let id = self.links.len() as LinkId;
        self.links.push(Link { from, to, cap });
        self.index.insert((from, to), id);
        id
    }

    /// The id of the `from -> to` channel, if present.
    pub fn id(&self, from: u32, to: u32) -> Option<LinkId> {
        self.index.get(&(from, to)).copied()
    }

    /// The link behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id as usize]
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the table has no channels.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of vertices (hosts + internal).
    pub fn vertices(&self) -> u32 {
        self.vertices
    }

    /// Map a vertex path to its channel ids, appending to `out`.
    ///
    /// Returns `Err` with the offending vertex pair if any consecutive pair
    /// is not an edge — topologies are required to emit paths made only of
    /// their own [`Topology::link_graph`] edges, so a miss is a topology
    /// bug, not a runtime condition.
    ///
    /// [`Topology::link_graph`]: crate::topology::Topology::link_graph
    pub fn route(&self, path: &[u32], out: &mut Vec<LinkId>) -> Result<(), (u32, u32)> {
        for w in path.windows(2) {
            match self.id(w[0], w[1]) {
                Some(id) => out.push(id),
                None => return Err((w[0], w[1])),
            }
        }
        Ok(())
    }
}

/// Integer-only contention configuration: part of scenario cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContendCfg {
    /// Per-link base bandwidth in MB/s (bytes/µs). `0` disables contention
    /// entirely — no link state is built and no message charges anything.
    pub link_mbps: u32,
    /// Routing policy.
    pub routing: Routing,
}

impl ContendCfg {
    /// Contention disabled (the plain LogGP model).
    pub fn off() -> Self {
        Self {
            link_mbps: 0,
            routing: Routing::Minimal,
        }
    }

    /// Whether this configuration actually charges link queuing.
    pub fn enabled(&self) -> bool {
        self.link_mbps > 0
    }
}

impl Default for ContendCfg {
    fn default() -> Self {
        Self::off()
    }
}

/// splitmix64: deterministic per-message salt for Valiant intermediates.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mutable per-run link occupancy: one FIFO cursor (`free_at`) per channel.
///
/// The executor calls [`ContendState::transmit`] once per cross-rank
/// message, in deterministic order; the returned extra delay (queuing wait
/// plus detour cost) is added to the message's LogGP arrival time.
#[derive(Debug, Clone)]
pub struct ContendState {
    cfg: ContendCfg,
    table: LinkTable,
    /// Virtual time at which each channel next becomes free.
    free_at: Vec<u64>,
    /// Total occupied time per channel (disjoint intervals by construction,
    /// so `busy[l] <= max(free_at)` always — the conservation invariant).
    busy: Vec<u64>,
    /// Extra per-hop wire latency charged per non-minimal hop (the LogGP
    /// per-hop cost, so a detour pays what the base model would charge it).
    per_hop_ns: u64,
    seed: u64,
    messages: u64,
    nonminimal: u64,
    queued_ns: u64,
    wait_hist: [u64; 16],
    // Scratch buffers reused across messages.
    path_min: Vec<u32>,
    path_alt: Vec<u32>,
    route_min: Vec<LinkId>,
    route_alt: Vec<LinkId>,
}

impl ContendState {
    /// Build link state for `topo` under `cfg`. `per_hop_ns` is the base
    /// model's per-hop latency, charged per extra hop of a detour;
    /// `seed` feeds the deterministic Valiant salt stream.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is disabled (`link_mbps == 0`).
    pub fn new(topo: &dyn Topology, cfg: ContendCfg, per_hop_ns: u64, seed: u64) -> Self {
        assert!(cfg.enabled(), "ContendState with contention disabled");
        let table = topo.link_graph();
        let n = table.len();
        Self {
            cfg,
            table,
            free_at: vec![0; n],
            busy: vec![0; n],
            per_hop_ns,
            seed,
            messages: 0,
            nonminimal: 0,
            queued_ns: 0,
            wait_hist: [0; 16],
            path_min: Vec::new(),
            path_alt: Vec::new(),
            route_min: Vec::new(),
            route_alt: Vec::new(),
        }
    }

    /// The channel graph being charged.
    pub fn table(&self) -> &LinkTable {
        &self.table
    }

    /// Serialization time of `bytes` on channel `l` in ns:
    /// `bytes * 1000 / (link_mbps * cap)`, integer floor.
    fn ser_ns(&self, bytes: u64, l: LinkId) -> u64 {
        let cap = self.table.link(l).cap as u128;
        (bytes as u128 * 1000 / (self.cfg.link_mbps as u128 * cap)) as u64
    }

    /// Base-capacity serialization time (used for detour-hop pricing).
    fn ser_base_ns(&self, bytes: u64) -> u64 {
        (bytes as u128 * 1000 / self.cfg.link_mbps as u128) as u64
    }

    /// Estimated cost of sending `bytes` over `route` departing at `now`:
    /// queuing wait if transmitted immediately, plus detour price for hops
    /// beyond `min_len`.
    fn cost(&self, route: &[LinkId], bytes: u64, now: u64, min_len: usize) -> u64 {
        let mut cursor = now;
        let mut wait = 0u64;
        for &l in route {
            let start = cursor.max(self.free_at[l as usize]);
            wait += start - cursor;
            cursor = start + self.ser_ns(bytes, l);
        }
        let detour = route.len().saturating_sub(min_len) as u64;
        wait + detour * (self.per_hop_ns + self.ser_base_ns(bytes))
    }

    /// Route and charge one message departing at `now`, returning the extra
    /// delay (queuing wait on every link of the chosen route, plus per-hop
    /// detour cost if the route is non-minimal) to add to its LogGP arrival
    /// time. Must be called in deterministic message order.
    pub fn transmit(
        &mut self,
        topo: &dyn Topology,
        src: usize,
        dst: usize,
        bytes: u64,
        now: u64,
    ) -> u64 {
        if src == dst {
            return 0;
        }
        self.messages += 1;
        self.path_min.clear();
        self.route_min.clear();
        topo.path(src, dst, PathKind::Minimal, &mut self.path_min);
        if let Err((a, b)) = self.table.route(&self.path_min, &mut self.route_min) {
            unreachable!(
                "{}: minimal path edge {a}->{b} not in link graph",
                topo.name()
            );
        }
        let min_len = self.route_min.len();
        let use_alt = if self.cfg.routing == Routing::Ugal {
            let salt = mix64(
                self.messages
                    ^ self.seed.rotate_left(17)
                    ^ ((src as u64) << 32)
                    ^ ((dst as u64) << 8),
            );
            self.path_alt.clear();
            self.route_alt.clear();
            topo.path(src, dst, PathKind::Valiant { salt }, &mut self.path_alt);
            if let Err((a, b)) = self.table.route(&self.path_alt, &mut self.route_alt) {
                unreachable!(
                    "{}: valiant path edge {a}->{b} not in link graph",
                    topo.name()
                );
            }
            // Minimal wins ties, so zero load always routes minimally.
            self.cost(&self.route_alt, bytes, now, min_len)
                < self.cost(&self.route_min, bytes, now, min_len)
        } else {
            false
        };
        let route_len = if use_alt {
            self.route_alt.len()
        } else {
            min_len
        };
        let mut cursor = now;
        let mut wait = 0u64;
        for i in 0..route_len {
            let l = if use_alt {
                self.route_alt[i]
            } else {
                self.route_min[i]
            };
            let ser = self.ser_ns(bytes, l);
            let li = l as usize;
            let start = cursor.max(self.free_at[li]);
            wait += start - cursor;
            self.free_at[li] = start + ser;
            self.busy[li] += ser;
            cursor = start + ser;
        }
        let detour_hops = route_len.saturating_sub(min_len) as u64;
        if detour_hops > 0 {
            self.nonminimal += 1;
        }
        self.queued_ns += wait;
        let bucket = if wait == 0 {
            0
        } else {
            ((64 - wait.leading_zeros()) as usize).min(15)
        };
        self.wait_hist[bucket] += 1;
        wait + detour_hops * (self.per_hop_ns + self.ser_base_ns(bytes))
    }

    /// Snapshot counters as [`NetStats`]. `horizon` is the run makespan;
    /// per-link utilization buckets are `busy / horizon` in 10 % bins.
    pub fn stats(&self, horizon: u64) -> NetStats {
        let mut util_hist = [0u64; 10];
        let mut busy_peak_ns = 0u64;
        for &b in &self.busy {
            busy_peak_ns = busy_peak_ns.max(b);
            let pct = if horizon == 0 {
                0
            } else {
                (b as u128 * 100 / horizon as u128) as u64
            };
            util_hist[((pct / 10) as usize).min(9)] += 1;
        }
        NetStats {
            links: self.table.len() as u64,
            messages: self.messages,
            nonminimal: self.nonminimal,
            queued_ns: self.queued_ns,
            busy_peak_ns,
            util_hist,
            wait_hist: self.wait_hist,
        }
    }

    /// Per-link busy time (testing/conservation checks).
    pub fn busy(&self) -> &[u64] {
        &self.busy
    }

    /// The latest `free_at` over all links: the link-occupancy horizon.
    pub fn horizon(&self) -> u64 {
        self.free_at.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Dragonfly, Flat, Topology, Torus3D};

    fn cfg(mbps: u32, routing: Routing) -> ContendCfg {
        ContendCfg {
            link_mbps: mbps,
            routing,
        }
    }

    #[test]
    fn self_send_is_free() {
        let t = Flat::new(4);
        let mut s = ContendState::new(&t, cfg(1000, Routing::Minimal), 50, 1);
        assert_eq!(s.transmit(&t, 2, 2, 1 << 20, 0), 0);
        assert_eq!(s.stats(100).messages, 0);
    }

    #[test]
    fn idle_links_charge_nothing() {
        let t = Flat::new(8);
        for routing in [Routing::Minimal, Routing::Ugal] {
            let mut s = ContendState::new(&t, cfg(1000, routing), 50, 7);
            // Distinct pairs at distinct times: no sharing, no wait.
            assert_eq!(s.transmit(&t, 0, 1, 8, 0), 0);
            assert_eq!(s.transmit(&t, 2, 3, 8, 1_000_000), 0);
            assert_eq!(s.stats(2_000_000).queued_ns, 0);
        }
    }

    #[test]
    fn shared_link_queues_second_message() {
        let t = Flat::new(4);
        let mut s = ContendState::new(&t, cfg(1000, Routing::Minimal), 50, 1);
        // 1 MB at 1000 MB/s = 1 ms serialization per link.
        let ser = 1_000_000;
        assert_eq!(s.transmit(&t, 0, 2, 1 << 20, 0), 0);
        // Second flow into the same destination shares the hub->2 channel.
        let extra = s.transmit(&t, 1, 2, 1 << 20, 0);
        assert!(
            extra >= ser,
            "second flow should wait a full serialization: {extra}"
        );
        let st = s.stats(4 * ser);
        assert_eq!(st.messages, 2);
        assert!(st.queued_ns >= ser);
    }

    #[test]
    fn conservation_busy_never_exceeds_horizon() {
        let t = Torus3D::new(3, 3, 2);
        let mut s = ContendState::new(&t, cfg(500, Routing::Ugal), 50, 99);
        let n = t.nodes();
        for i in 0..200usize {
            let src = (i * 7) % n;
            let dst = (i * 13 + 5) % n;
            s.transmit(&t, src, dst, 4096, (i as u64) * 100);
        }
        let horizon = s.horizon();
        for (l, &b) in s.busy().iter().enumerate() {
            assert!(b <= horizon, "link {l}: busy {b} > horizon {horizon}");
        }
    }

    #[test]
    fn ugal_detours_under_load() {
        // Hammer one global dragonfly channel; UGAL should start taking
        // non-minimal routes while minimal keeps queuing.
        let d = Dragonfly::new(4, 2, 4);
        let mut min = ContendState::new(&d, cfg(1000, Routing::Minimal), 50, 3);
        let mut ada = ContendState::new(&d, cfg(1000, Routing::Ugal), 50, 3);
        let gsize = 8; // routers_per_group * nodes_per_router
        let mut min_total = 0u64;
        let mut ada_total = 0u64;
        for i in 0..64u64 {
            let src = (i % gsize) as usize;
            let dst = src + gsize as usize; // group 0 -> group 1
            min_total += min.transmit(&d, src, dst, 1 << 20, 0);
            ada_total += ada.transmit(&d, src, dst, 1 << 20, 0);
        }
        assert!(ada.stats(1).nonminimal > 0, "UGAL never detoured");
        assert!(
            ada_total < min_total,
            "adaptive {ada_total} should beat minimal {min_total}"
        );
    }

    #[test]
    fn link_table_rejects_garbage() {
        let mut t = LinkTable::new(3);
        let a = t.add(0, 1, 1);
        assert_eq!(t.add(0, 1, 9), a, "re-add must be idempotent");
        assert_eq!(t.link(a).cap, 1, "first capacity wins");
        assert_eq!(t.id(1, 0), None);
        let mut out = Vec::new();
        assert_eq!(t.route(&[0, 1, 2], &mut out), Err((1, 2)));
    }
}

//! # ghost-net — the simulated interconnect
//!
//! GhostSim's stand-in for the SC'07 testbed's custom interconnect (Red
//! Storm's 3-D mesh). The model is LogGP — the standard parametrization of
//! message cost in parallel-computing analysis:
//!
//! * `L` — end-to-end wire latency of a minimal message,
//! * `o` — CPU overhead paid by sender and receiver per message (this is the
//!   part OS noise can delay!),
//! * `g` — minimum gap between consecutive message injections,
//! * `G` — additional wire time per byte (inverse bandwidth).
//!
//! A [`topology::Topology`] adds per-hop latency on top of `L`, so machine
//! shape (3-D torus vs. fat tree vs. idealized flat network) affects
//! collective timing the way it does on real machines.
//!
//! Messages traverse the network contention-free: the paper's effects are
//! CPU-interference effects, and its experiments were run on a network
//! provisioned well below saturation, so contention modeling is deliberately
//! out of scope (documented in DESIGN.md).

#![warn(missing_docs)]
// Simulator code must degrade through typed errors, never abort: panicking
// and unwrapping are denied in lib code (tests are exempt). `ci.sh` also
// enforces this with a scoped clippy pass.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod loggp;
pub mod lossy;
pub mod topology;

pub use loggp::{LogGP, Network};
pub use lossy::{LossyLink, RetryModel};
pub use topology::{Dragonfly, FatTree, Flat, Topology, Torus3D};

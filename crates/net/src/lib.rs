//! # ghost-net — the simulated interconnect
//!
//! GhostSim's stand-in for the SC'07 testbed's custom interconnect (Red
//! Storm's 3-D mesh). The model is LogGP — the standard parametrization of
//! message cost in parallel-computing analysis:
//!
//! * `L` — end-to-end wire latency of a minimal message,
//! * `o` — CPU overhead paid by sender and receiver per message (this is the
//!   part OS noise can delay!),
//! * `g` — minimum gap between consecutive message injections,
//! * `G` — additional wire time per byte (inverse bandwidth).
//!
//! A [`topology::Topology`] adds per-hop latency on top of `L`, so machine
//! shape (3-D torus vs. fat tree vs. idealized flat network) affects
//! collective timing the way it does on real machines.
//!
//! By default messages traverse the network contention-free — the paper's
//! effects are CPU-interference effects, measured on a network provisioned
//! well below saturation. The [`contend`] module lifts that restriction:
//! every topology exposes an explicit channel graph, each channel is a
//! FIFO server with an integer capacity, and messages charge queuing delay
//! on every link of their route, with minimal or UGAL-style adaptive
//! routing chosen per scenario. Zero-contention runs stay byte-identical
//! to the plain LogGP model.

#![warn(missing_docs)]
// Simulator code must degrade through typed errors, never abort: panicking
// and unwrapping are denied in lib code (tests are exempt). `ci.sh` also
// enforces this with a scoped clippy pass.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod contend;
pub mod loggp;
pub mod lossy;
pub mod topology;

pub use contend::{ContendCfg, ContendState, LinkId, LinkTable, PathKind, Routing};
pub use loggp::{LogGP, Network};
pub use lossy::{LossyLink, RetryModel};
pub use topology::{Dragonfly, FatTree, Flat, Topology, TopologyError, Torus3D};

//! Lossy links: packet drop/duplication with a retransmission cost model.
//!
//! The LogGP model of [`crate::loggp`] assumes a perfectly reliable fabric.
//! This module adds the unreliable variant used by the resilience
//! experiments: each transmission attempt is dropped with a configurable
//! probability, and every drop costs the sender one extra overhead `o`
//! (the retransmission) plus a timeout drawn from an exponential-backoff
//! ladder before the retry departs — i.e. the retransmit cost is charged
//! to the same LogGP budget as a first transmission, never hand-waved.
//!
//! Everything here is plain integer data (`Eq`/`Hash`) so lossy
//! configurations can key memo caches, and all sampling is routed through
//! the caller-supplied [`Xoshiro256`] so identical seeds reproduce
//! identical drop sequences. A `drop_ppm`/`dup_ppm` of zero makes *zero*
//! RNG draws — a lossless lossy-link is byte-identical to no lossy-link.

use ghost_engine::rng::Xoshiro256;
use ghost_engine::time::{Time, US};

/// Retransmission timeout/backoff schedule.
///
/// Attempt `i` (0-based) that is dropped costs the sender a timeout of
/// `rto * (backoff_x1000 / 1000)^i` nanoseconds (saturating, capped by
/// [`RetryModel::max_rto`]) before the next attempt departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryModel {
    /// Base retransmission timeout (ns).
    pub rto: Time,
    /// Backoff multiplier in thousandths (2000 = double every retry).
    pub backoff_x1000: u32,
    /// Cap on any single timeout (ns); 0 means uncapped.
    pub max_rto: Time,
    /// Maximum number of retransmissions per message. The attempt after
    /// the last retry always succeeds (the simulation must terminate), so
    /// a message costs at most `max_retries` extra overheads + timeouts.
    pub max_retries: u32,
}

impl Default for RetryModel {
    /// 100 µs base timeout, doubling per retry, capped at 10 ms, 8 retries.
    fn default() -> Self {
        Self {
            rto: 100 * US,
            backoff_x1000: 2000,
            max_rto: 10_000 * US,
            max_retries: 8,
        }
    }
}

impl RetryModel {
    /// Timeout charged for the `i`-th (0-based) dropped attempt.
    pub fn timeout(&self, i: u32) -> Time {
        let mut t = self.rto as u128;
        for _ in 0..i {
            t = t * u128::from(self.backoff_x1000.max(1000)) / 1000;
            if self.max_rto > 0 && t >= self.max_rto as u128 {
                return self.max_rto;
            }
        }
        let t = t.min(u128::from(Time::MAX)) as Time;
        if self.max_rto > 0 {
            t.min(self.max_rto)
        } else {
            t
        }
    }

    /// Total timeout delay accumulated by a message that needed `attempts`
    /// transmissions (the first `attempts - 1` were dropped).
    pub fn total_delay(&self, attempts: u32) -> Time {
        let mut total: Time = 0;
        for i in 0..attempts.saturating_sub(1) {
            total = total.saturating_add(self.timeout(i));
        }
        total
    }
}

/// A machine-wide unreliable fabric: per-attempt drop and per-message
/// duplication probabilities plus the retransmission schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LossyLink {
    /// Per-attempt drop probability in parts per million.
    pub drop_ppm: u32,
    /// Per-message duplication probability in parts per million (the
    /// duplicate costs the sender one extra overhead; the receiver
    /// discards it by sequence number at no cost).
    pub dup_ppm: u32,
    /// Timeout/backoff model for retransmissions.
    pub retry: RetryModel,
}

impl Default for LossyLink {
    /// A reliable link (0 ppm everywhere) with the default retry schedule.
    fn default() -> Self {
        Self {
            drop_ppm: 0,
            dup_ppm: 0,
            retry: RetryModel::default(),
        }
    }
}

impl LossyLink {
    /// A link that drops each attempt with probability `drop_ppm / 1e6`.
    pub fn drops(drop_ppm: u32) -> Self {
        Self {
            drop_ppm,
            ..Self::default()
        }
    }

    /// Whether this link never drops or duplicates (behaviourally identical
    /// to no lossy link at all — no RNG draws are made).
    pub fn is_ideal(&self) -> bool {
        self.drop_ppm == 0 && self.dup_ppm == 0
    }
}

/// Sample how many transmissions a message needs under a per-attempt drop
/// probability of `drop_ppm / 1e6` with at most `max_retries` retries.
///
/// Returns `attempts >= 1`; the first `attempts - 1` were dropped. With
/// `drop_ppm == 0` this returns 1 without touching the RNG, which is what
/// makes a 0-ppm link byte-identical to the reliable baseline.
pub fn sample_attempts(drop_ppm: u32, max_retries: u32, rng: &mut Xoshiro256) -> u32 {
    if drop_ppm == 0 {
        return 1;
    }
    let mut attempts: u32 = 1;
    while attempts <= max_retries && rng.gen_range(1_000_000) < u64::from(drop_ppm) {
        attempts += 1;
    }
    attempts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_ladder_backs_off_and_caps() {
        let r = RetryModel {
            rto: 100,
            backoff_x1000: 2000,
            max_rto: 500,
            max_retries: 8,
        };
        assert_eq!(r.timeout(0), 100);
        assert_eq!(r.timeout(1), 200);
        assert_eq!(r.timeout(2), 400);
        assert_eq!(r.timeout(3), 500, "capped");
        assert_eq!(r.timeout(30), 500);
    }

    #[test]
    fn total_delay_sums_the_ladder() {
        let r = RetryModel {
            rto: 100,
            backoff_x1000: 2000,
            max_rto: 0,
            max_retries: 8,
        };
        assert_eq!(r.total_delay(1), 0, "first attempt succeeded");
        assert_eq!(r.total_delay(2), 100);
        assert_eq!(r.total_delay(3), 300);
        assert_eq!(r.total_delay(4), 700);
    }

    #[test]
    fn backoff_below_one_is_clamped() {
        let r = RetryModel {
            rto: 100,
            backoff_x1000: 500,
            max_rto: 0,
            max_retries: 4,
        };
        assert_eq!(r.timeout(3), 100, "backoff never shrinks the timeout");
    }

    #[test]
    fn zero_ppm_makes_no_rng_draws() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        assert_eq!(sample_attempts(0, 8, &mut a), 1);
        // The RNG state is untouched: both generators still agree.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn certain_drop_exhausts_the_retry_budget() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        assert_eq!(sample_attempts(1_000_000, 3, &mut rng), 4);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let draw = |seed| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            (0..64)
                .map(|_| sample_attempts(200_000, 8, &mut rng))
                .collect::<Vec<u32>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(
            draw(42),
            draw(43),
            "different seeds explore different drops"
        );
    }

    #[test]
    fn drop_rate_matches_the_configured_probability() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let n = 100_000;
        let extra: u64 = (0..n)
            .map(|_| u64::from(sample_attempts(250_000, 32, &mut rng) - 1))
            .sum();
        // E[extra attempts] = p / (1 - p) = 1/3 for p = 0.25.
        let mean = extra as f64 / n as f64;
        assert!((mean - 1.0 / 3.0).abs() < 0.02, "mean extra = {mean}");
    }

    #[test]
    fn lossy_links_are_hashable_cache_keys() {
        use std::collections::HashSet;
        let set: HashSet<LossyLink> = [LossyLink::drops(100), LossyLink::drops(100)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 1);
        assert!(LossyLink::default().is_ideal());
        assert!(!LossyLink::drops(1).is_ideal());
    }
}

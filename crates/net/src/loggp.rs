//! LogGP message-cost model and machine presets.

use ghost_engine::time::{Time, US};

use crate::topology::Topology;

/// LogGP parameters, all times in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogGP {
    /// End-to-end latency of a minimal message (excluding per-hop cost).
    pub l: Time,
    /// Per-message CPU overhead on each side (send and receive).
    pub o: Time,
    /// Minimum gap between consecutive message injections from one node.
    pub g: Time,
    /// Per-byte wire time in picoseconds (1000/G_ps = GB/s). Stored in
    /// picoseconds so single-digit-ns/byte networks are representable
    /// without losing sub-ns precision on large messages.
    pub big_g_ps: u64,
    /// Additional latency per network hop.
    pub per_hop: Time,
}

impl LogGP {
    /// Wire time for a `bytes`-byte payload over `hops` hops: `L + hops*per_hop + bytes*G`.
    #[inline]
    pub fn wire_time(&self, bytes: u64, hops: u32) -> Time {
        let byte_time = (bytes as u128 * self.big_g_ps as u128 / 1000) as Time;
        self.l + self.per_hop * hops as Time + byte_time
    }

    /// CPU overhead to send one message (subject to noise).
    #[inline]
    pub fn send_overhead(&self) -> Time {
        self.o
    }

    /// CPU overhead to receive/process one message (subject to noise).
    #[inline]
    pub fn recv_overhead(&self) -> Time {
        self.o
    }

    /// Effective bandwidth in GB/s implied by `big_g_ps`.
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.big_g_ps == 0 {
            f64::INFINITY
        } else {
            1000.0 / self.big_g_ps as f64
        }
    }

    /// A Red-Storm-like MPP interconnect: ~4 µs zero-byte latency, ~2 GB/s,
    /// low per-message overhead, 50 ns per hop.
    pub fn mpp() -> Self {
        Self {
            l: 3 * US,
            o: 500,
            g: 300,
            big_g_ps: 500, // 2 GB/s
            per_hop: 50,
        }
    }

    /// A commodity GigE-class cluster: tens of µs latency, ~0.1 GB/s, heavy
    /// per-message overhead.
    pub fn commodity() -> Self {
        Self {
            l: 30 * US,
            o: 5 * US,
            g: 2 * US,
            big_g_ps: 10_000, // 0.1 GB/s
            per_hop: 200,
        }
    }

    /// An idealized zero-cost network, useful for isolating pure noise
    /// effects in unit tests and model-validation benches.
    pub fn ideal() -> Self {
        Self {
            l: 0,
            o: 0,
            g: 0,
            big_g_ps: 0,
            per_hop: 0,
        }
    }
}

/// A complete network: LogGP cost model plus topology.
#[derive(Debug, Clone)]
pub struct Network {
    params: LogGP,
    topology: Box<dyn Topology>,
}

impl Network {
    /// Combine a cost model and a topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology reports zero nodes.
    pub fn new(params: LogGP, topology: Box<dyn Topology>) -> Self {
        assert!(topology.nodes() > 0, "topology has no nodes");
        Self { params, topology }
    }

    /// The LogGP parameters.
    pub fn params(&self) -> &LogGP {
        &self.params
    }

    /// The topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topology.as_ref()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.topology.nodes()
    }

    /// Wire delivery time from `src` to `dst` for `bytes` (excludes the
    /// sender/receiver CPU overheads, which the executor charges against
    /// each node's noise process).
    ///
    /// A self-message costs no wire time.
    pub fn delivery(&self, src: usize, dst: usize, bytes: u64) -> Time {
        if src == dst {
            return 0;
        }
        let hops = self.topology.hops(src, dst);
        self.params.wire_time(bytes, hops)
    }

    /// Per-message send CPU overhead.
    pub fn send_overhead(&self) -> Time {
        self.params.send_overhead()
    }

    /// Per-message receive CPU overhead.
    pub fn recv_overhead(&self) -> Time {
        self.params.recv_overhead()
    }

    /// Minimum injection gap.
    pub fn gap(&self) -> Time {
        self.params.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Flat, Torus3D};

    #[test]
    fn wire_time_components() {
        let p = LogGP {
            l: 1000,
            o: 100,
            g: 50,
            big_g_ps: 500,
            per_hop: 10,
        };
        // 8 bytes over 3 hops: 1000 + 30 + 8*0.5 = 1034.
        assert_eq!(p.wire_time(8, 3), 1034);
        // Zero bytes, zero hops: just L.
        assert_eq!(p.wire_time(0, 0), 1000);
    }

    #[test]
    fn byte_time_rounds_down_in_picoseconds() {
        let p = LogGP {
            l: 0,
            o: 0,
            g: 0,
            big_g_ps: 300,
            per_hop: 0,
        };
        // 10 bytes * 300ps = 3000ps = 3ns.
        assert_eq!(p.wire_time(10, 0), 3);
        // 1 byte * 300ps = 0.3ns -> truncates to 0.
        assert_eq!(p.wire_time(1, 0), 0);
    }

    #[test]
    fn large_message_does_not_overflow() {
        let p = LogGP::commodity();
        // 1 GiB at 10ns/byte ~= 10.7s; must not overflow.
        let t = p.wire_time(1 << 30, 6);
        assert!(t > 10 * ghost_engine::time::SEC);
    }

    #[test]
    fn bandwidth_accessor() {
        assert!((LogGP::mpp().bandwidth_gbps() - 2.0).abs() < 1e-9);
        assert!(LogGP::ideal().bandwidth_gbps().is_infinite());
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let mpp = LogGP::mpp();
        let com = LogGP::commodity();
        assert!(mpp.l < com.l);
        assert!(mpp.o < com.o);
        assert!(mpp.big_g_ps < com.big_g_ps);
    }

    #[test]
    fn network_delivery_uses_hops() {
        let net = Network::new(
            LogGP {
                l: 1000,
                o: 0,
                g: 0,
                big_g_ps: 0,
                per_hop: 100,
            },
            Box::new(Torus3D::new(4, 4, 4)),
        );
        // Nodes 0 and 1 are one hop apart in x.
        assert_eq!(net.delivery(0, 1, 0), 1100);
        // Self-message is free.
        assert_eq!(net.delivery(5, 5, 1 << 20), 0);
    }

    #[test]
    fn flat_network_is_uniform() {
        let net = Network::new(LogGP::mpp(), Box::new(Flat::new(64)));
        let d1 = net.delivery(0, 1, 8);
        let d2 = net.delivery(3, 60, 8);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_topology_panics() {
        Network::new(LogGP::ideal(), Box::new(Flat::new(0)));
    }
}

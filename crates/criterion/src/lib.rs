//! A minimal, self-contained benchmark harness exposing the subset of the
//! `criterion` crate API that GhostSim's `perf_*` benches use.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a small wall-clock harness: each benchmark is warmed up, then timed over
//! enough iterations to fill a measurement window, and the mean / min /
//! max per-iteration times are printed together with throughput when one
//! was declared. There are no statistical comparisons against saved
//! baselines — runs print absolute numbers for eyeballing and for
//! EXPERIMENTS.md.
//!
//! Environment knobs:
//! * `CRITERION_MEASURE_MS` — measurement window per benchmark
//!   (default 300 ms).
//! * `CRITERION_WARMUP_MS` — warm-up window (default 100 ms).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim times every batch individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default),
    )
}

/// Per-iteration timing statistics over one measurement window.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Number of timed iterations.
    pub iters: u64,
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    /// Time `routine` repeatedly; the measurement window is wall-clock
    /// bounded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up window elapses.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine());
        }
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let window = Instant::now();
        while window.elapsed() < self.measure || iters < 10 {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            iters += 1;
            if iters >= 1_000_000_000 {
                break;
            }
        }
        self.sample = Some(Sample {
            mean: total / iters.max(1) as u32,
            min,
            max,
            iters,
        });
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let window = Instant::now();
        while window.elapsed() < self.measure || iters < 10 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            iters += 1;
        }
        self.sample = Some(Sample {
            mean: total / iters.max(1) as u32,
            min,
            max,
            iters,
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

fn fmt_throughput(tp: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(1e-12);
    match tp {
        Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / secs / 1e6),
        Throughput::Bytes(n) => format!("{:.3} MiB/s", n as f64 / secs / (1024.0 * 1024.0)),
    }
}

fn report(id: &str, sample: &Sample, throughput: Option<Throughput>) {
    let tp = throughput
        .map(|t| format!("  thrpt: {}", fmt_throughput(t, sample.mean)))
        .unwrap_or_default();
    println!(
        "{id:<48} time: [{} {} {}]  iters: {}{}",
        fmt_duration(sample.min),
        fmt_duration(sample.mean),
        fmt_duration(sample.max),
        sample.iters,
        tp
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: env_ms("CRITERION_WARMUP_MS", 100),
            measure: env_ms("CRITERION_MEASURE_MS", 300),
        }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            sample: None,
        };
        f(&mut b);
        if let Some(s) = &b.sample {
            report(&id, s, None);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per iteration for throughput reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Override the sample count (accepted for API compatibility; the shim
    /// sizes its sample by wall-clock window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            warmup: self.criterion.warmup,
            measure: self.criterion.measure,
            sample: None,
        };
        f(&mut b);
        if let Some(s) = &b.sample {
            report(&full, s, self.throughput);
        }
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_env() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_samples_and_reports() {
        let mut c = fast_env();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = fast_env();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}

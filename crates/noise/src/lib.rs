//! # ghost-noise — OS-noise models, injection signatures, FTQ/FWQ
//!
//! This crate simulates the SC'07 study's *kernel noise-injection framework*.
//! On the real system, a patched lightweight kernel periodically stole the
//! CPU from the application for a configured duration at a configured
//! frequency; here, a [`NodeNoise`] process plays the same role for a
//! simulated node: every interval of CPU work the simulator executes is
//! stretched around the noise process's stolen intervals.
//!
//! The central abstraction is the pair of traits in [`model`]:
//!
//! * [`NodeNoise`] — the per-node process: `advance(t, work)` answers "if
//!   this node starts `work` nanoseconds of CPU at time `t`, when does it
//!   finish?", and is the only question the rest of the simulator ever asks.
//! * [`NoiseModel`] — the experiment-level configuration that instantiates a
//!   `NodeNoise` per node (with per-node phases / RNG streams).
//!
//! Implementations:
//!
//! * [`NoNoise`] — the Catamount-like noiseless baseline.
//! * [`periodic::PeriodicNoise`] — the paper's injected signatures: a pulse
//!   of fixed duration at fixed frequency (closed-form, O(1) `advance`).
//! * [`stochastic::PoissonNoise`] / [`stochastic::TimesliceNoise`] — random
//!   noise processes for robustness studies.
//! * [`trace::TraceNoise`] — replay of recorded noise intervals.
//! * [`composite::CompositeModel`] — superposition of independent sources,
//!   including a "commodity OS" preset (timer tick + scheduler + daemons).
//!
//! Verification tooling mirrors the paper's: [`ftq`] implements the Fixed
//! Time Quanta and Fixed Work Quanta microbenchmarks, [`stats`] and
//! [`spectrum`] analyze their output (the power spectrum of an FTQ series
//! recovers the injection frequency, exactly as the paper demonstrates).
//!
//! ## Example: verify an injected signature with FWQ
//!
//! ```
//! use ghost_noise::{signature::Signature, ftq};
//! use ghost_engine::time::{US, MS};
//!
//! // 100 Hz x 250 us = 2.5% net noise, as in the paper's Table 1.
//! let sig = Signature::new(100.0, 250 * US);
//! assert!((sig.net_fraction() - 0.025).abs() < 1e-12);
//!
//! let model = sig.periodic_model(ghost_noise::model::PhasePolicy::Aligned);
//! let run = ftq::fwq(&model, /*node=*/0, /*seed=*/1, /*work=*/MS, /*samples=*/2000);
//! // Measured net noise matches the configured signature.
//! assert!((run.measured_noise_fraction() - 0.025).abs() < 0.002);
//! ```

#![warn(missing_docs)]

pub mod burst;
pub mod composite;
pub mod fault;
pub mod ftq;
pub mod intervals;
pub mod jitter;
pub mod model;
pub mod periodic;
pub mod signature;
pub mod spectrum;
pub mod stats;
pub mod stochastic;
pub mod trace;

pub use fault::{FaultEvent, FaultKind, FaultPlan, OneOffDelay};
pub use model::{NoNoise, NodeNoise, NoiseModel, PhasePolicy};
pub use periodic::PeriodicNoise;
pub use signature::Signature;

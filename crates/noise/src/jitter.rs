//! Jittered periodic noise: a timer with imperfect period.
//!
//! Real kernel timers do not fire with crystal precision: interrupt
//! coalescing, cache effects, and lock contention jitter both the firing
//! instant and the handler duration. [`JitteredPeriodic`] perturbs each
//! pulse of a nominal signature with Gaussian jitter on its start and a
//! multiplicative spread on its duration. The experiments use it to confirm
//! that the paper's findings do not depend on injection being perfectly
//! periodic (they don't — net intensity and pulse scale dominate).

use ghost_engine::rng::{NodeStream, Xoshiro256};
use ghost_engine::time::Time;

use crate::intervals::{Interval, IntervalNoise, IntervalSource};
use crate::model::{streams, NodeNoise, NoiseModel, PhasePolicy};
use crate::Signature;

/// Periodic noise with per-pulse start jitter and duration spread.
#[derive(Debug, Clone, Copy)]
pub struct JitteredPeriodic {
    signature: Signature,
    /// Standard deviation of the pulse-start jitter, in ns.
    start_jitter: Time,
    /// Relative standard deviation of the pulse duration (0.1 = ±10%).
    duration_spread: f64,
    policy: PhasePolicy,
}

impl JitteredPeriodic {
    /// Jitter `signature` with the given start-time sigma and relative
    /// duration spread.
    ///
    /// # Panics
    ///
    /// Panics if the jitter could plausibly reorder pulses (sigma larger
    /// than a quarter period) or the spread is not in `[0, 1)`.
    pub fn new(
        signature: Signature,
        start_jitter: Time,
        duration_spread: f64,
        policy: PhasePolicy,
    ) -> Self {
        assert!(
            start_jitter <= signature.period() / 4,
            "start jitter {start_jitter} too large for period {}",
            signature.period()
        );
        assert!(
            (0.0..1.0).contains(&duration_spread),
            "duration spread out of range: {duration_spread}"
        );
        Self {
            signature,
            start_jitter,
            duration_spread,
            policy,
        }
    }

    /// The underlying nominal signature.
    pub fn signature(&self) -> Signature {
        self.signature
    }
}

/// Interval stream of one node's jittered pulse train.
pub struct JitterSource {
    rng: Xoshiro256,
    period: Time,
    duration: Time,
    phase: Time,
    start_jitter: f64,
    duration_spread: f64,
    k: u64,
}

impl IntervalSource for JitterSource {
    fn next_interval(&mut self) -> Option<Interval> {
        let nominal = self.phase as i128 + self.k as i128 * self.period as i128;
        self.k += 1;
        // Clamp to a third of the period: consecutive jittered starts can
        // then never reorder (max |j_k - j_{k+1}| = 2/3 period < period),
        // preserving the IntervalSource monotonicity contract.
        let bound = self.period as f64 / 3.0;
        let jitter = (self.rng.normal() * self.start_jitter).clamp(-bound, bound) as i128;
        let start = (nominal + jitter).max(0) as Time;
        let dur = ((self.duration as f64) * (1.0 + self.duration_spread * self.rng.normal()))
            .max(0.0)
            .round() as Time;
        Some(Interval::new(start, start + dur))
    }
}

impl NoiseModel for JitteredPeriodic {
    fn instantiate(&self, node: usize, s: &NodeStream) -> Box<dyn NodeNoise> {
        let period = self.signature.period();
        let phase = self.policy.phase_for(node, period, s);
        let rng = s.for_node(node, streams::ARRIVALS ^ 0xBEEF);
        Box::new(IntervalNoise::new(JitterSource {
            rng,
            period,
            duration: self.signature.duration(),
            phase,
            start_jitter: self.start_jitter as f64,
            duration_spread: self.duration_spread,
            k: 0,
        }))
    }

    fn net_fraction(&self) -> f64 {
        self.signature.net_fraction()
    }

    fn describe(&self) -> String {
        format!(
            "jittered {} (start sigma {}, duration spread {:.0}%)",
            self.signature.label(),
            ghost_engine::time::format_time(self.start_jitter),
            self.duration_spread * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::realized_fraction;
    use ghost_engine::time::{MS, SEC, US};

    fn sig() -> Signature {
        Signature::new(100.0, 250 * US)
    }

    #[test]
    fn zero_jitter_matches_periodic() {
        let j = JitteredPeriodic::new(sig(), 0, 0.0, PhasePolicy::Aligned);
        let f = realized_fraction(&j, 0, 5, 10 * SEC);
        assert!((f - 0.025).abs() < 1e-6, "{f}");
        let streams = NodeStream::new(5);
        let mut a = j.instantiate(0, &streams);
        let mut b = sig()
            .periodic_model(PhasePolicy::Aligned)
            .instantiate(0, &streams);
        for i in 0..100 {
            let t = i * 3 * MS;
            assert_eq!(a.next_free(t), b.next_free(t), "t={t}");
        }
    }

    #[test]
    fn jittered_fraction_stays_at_nominal() {
        let j = JitteredPeriodic::new(sig(), 500 * US, 0.2, PhasePolicy::Random);
        let f = realized_fraction(&j, 0, 5, 30 * SEC);
        assert!((f - 0.025).abs() < 0.003, "realized {f}");
    }

    #[test]
    fn jitter_decorrelates_pulse_times() {
        let j = JitteredPeriodic::new(sig(), 500 * US, 0.0, PhasePolicy::Aligned);
        let streams = NodeStream::new(5);
        let mut a = j.instantiate(0, &streams);
        let mut b = j.instantiate(1, &streams);
        // Aligned phases but independent jitter: pulse boundaries differ.
        let fa: Vec<Time> = (0..200).map(|i| a.next_free(i * MS)).collect();
        let fb: Vec<Time> = (0..200).map(|i| b.next_free(i * MS)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn jitter_is_reproducible() {
        let j = JitteredPeriodic::new(sig(), 200 * US, 0.1, PhasePolicy::Random);
        let f1 = realized_fraction(&j, 3, 9, 5 * SEC);
        let f2 = realized_fraction(&j, 3, 9, 5 * SEC);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "too large for period")]
    fn oversized_jitter_panics() {
        JitteredPeriodic::new(sig(), 5 * MS, 0.0, PhasePolicy::Aligned);
    }

    #[test]
    #[should_panic(expected = "spread out of range")]
    fn bad_spread_panics() {
        JitteredPeriodic::new(sig(), 0, 1.5, PhasePolicy::Aligned);
    }

    #[test]
    fn describe_mentions_jitter() {
        let j = JitteredPeriodic::new(sig(), 200 * US, 0.1, PhasePolicy::Random);
        assert!(j.describe().contains("jittered"));
        assert_eq!(j.signature().hz(), 100.0);
    }
}

//! Composite noise: superposition of independent sources.
//!
//! A commodity operating system's noise is not one process but many — a
//! periodic timer tick, scheduler bookkeeping at a slower cadence, and rare
//! long-running daemons. [`CompositeModel`] superimposes any number of
//! component models on each node; stolen intervals from all components are
//! merged (overlapping theft steals once). The [`commodity_os`] preset is
//! GhostSim's stand-in for the "full-weight kernel" the paper contrasts
//! against its lightweight kernel.

use ghost_engine::rng::NodeStream;
use ghost_engine::time::{Time, US};

use crate::intervals::{Interval, IntervalNoise, IntervalSource, MergeSource};
use crate::model::{NodeNoise, NoiseModel, PhasePolicy};
use crate::periodic::PeriodicNoise;
use crate::stochastic::{DurationDist, PoissonSource};

/// A periodic component expressed as an interval source (so it can be
/// merged with stochastic components).
pub struct PeriodicSource {
    noise: PeriodicNoise,
    k: u64,
}

impl PeriodicSource {
    /// Pulses of `duration` every `period`, offset by `phase`.
    pub fn new(period: Time, duration: Time, phase: Time) -> Self {
        Self {
            noise: PeriodicNoise::new(period, duration, phase),
            k: 0,
        }
    }
}

impl IntervalSource for PeriodicSource {
    fn next_interval(&mut self) -> Option<Interval> {
        if self.noise.duration() == 0 {
            return None;
        }
        let start = self.noise.phase() + self.k * self.noise.period();
        self.k += 1;
        Some(Interval::new(start, start + self.noise.duration()))
    }
}

/// One component of a composite model.
#[derive(Debug, Clone, Copy)]
pub enum Component {
    /// Periodic pulses: (period, duration), phased per the composite policy.
    Periodic {
        /// Pulse period in nanoseconds.
        period: Time,
        /// Pulse duration in nanoseconds.
        duration: Time,
    },
    /// Poisson pulses: mean `rate_hz` arrivals/s with the given durations.
    Poisson {
        /// Mean arrival rate in Hz.
        rate_hz: f64,
        /// Pulse duration distribution.
        duration: DurationDist,
    },
}

impl Component {
    /// Nominal stolen fraction of this component alone.
    pub fn net_fraction(&self) -> f64 {
        match *self {
            Component::Periodic { period, duration } => {
                if period == 0 {
                    0.0
                } else {
                    duration as f64 / period as f64
                }
            }
            Component::Poisson { rate_hz, duration } => rate_hz * duration.mean() / 1e9,
        }
    }
}

/// Superposition of independent noise components.
#[derive(Debug, Clone)]
pub struct CompositeModel {
    components: Vec<Component>,
    policy: PhasePolicy,
    name: String,
}

impl CompositeModel {
    /// Build a composite from components; periodic components take their
    /// per-node phase from `policy`.
    pub fn new(name: impl Into<String>, components: Vec<Component>, policy: PhasePolicy) -> Self {
        Self {
            components,
            policy,
            name: name.into(),
        }
    }

    /// The component list.
    pub fn components(&self) -> &[Component] {
        &self.components
    }
}

impl NoiseModel for CompositeModel {
    fn instantiate(&self, node: usize, s: &NodeStream) -> Box<dyn NodeNoise> {
        let mut sources: Vec<Box<dyn IntervalSource>> = Vec::with_capacity(self.components.len());
        for (ci, c) in self.components.iter().enumerate() {
            match *c {
                Component::Periodic { period, duration } => {
                    // Give each component an independent phase stream by
                    // folding the component index into the stream tag.
                    let phase = self.policy.phase_for(
                        node,
                        period,
                        &NodeStream::new(s.seed() ^ (ci as u64) << 32),
                    );
                    sources.push(Box::new(PeriodicSource::new(period, duration, phase)));
                }
                Component::Poisson { rate_hz, duration } => {
                    let rng =
                        s.for_node(node, crate::model::streams::ARRIVALS ^ ((ci as u64) << 8));
                    sources.push(Box::new(PoissonSource::new(rate_hz, duration, rng)));
                }
            }
        }
        Box::new(IntervalNoise::new(MergeSource::new(sources)))
    }

    fn net_fraction(&self) -> f64 {
        // Upper bound ignoring overlap; realized fraction is measured by FWQ.
        self.components
            .iter()
            .map(Component::net_fraction)
            .sum::<f64>()
            .min(1.0)
    }

    fn describe(&self) -> String {
        format!(
            "composite '{}' ({} components, {:.2}% net nominal)",
            self.name,
            self.components.len(),
            self.net_fraction() * 100.0
        )
    }
}

/// A "commodity OS" preset: the noise profile of a general-purpose kernel
/// (as characterized by the noise-measurement literature the paper builds
/// on): a fast timer tick, slower scheduler/bookkeeping activity, and rare
/// long daemon wakeups.
///
/// * 1000 Hz tick, ~5 µs each (0.5%)
/// * 100 Hz scheduler pass, ~30 µs each (0.3%)
/// * ~1 Hz daemons, exponential ~5 ms each (0.5%)
///
/// Total nominal ~1.3% — small in net terms, yet (as the experiments show)
/// its rare long pulses dominate the application-level impact.
pub fn commodity_os() -> CompositeModel {
    CompositeModel::new(
        "commodity-os",
        vec![
            Component::Periodic {
                period: ghost_engine::time::MS, // 1000 Hz
                duration: 5 * US,
            },
            Component::Periodic {
                period: 10 * ghost_engine::time::MS, // 100 Hz
                duration: 30 * US,
            },
            Component::Poisson {
                rate_hz: 1.0,
                duration: DurationDist::Exponential(5 * ghost_engine::time::MS),
            },
        ],
        PhasePolicy::Random,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::realized_fraction;
    use ghost_engine::time::{MS, SEC};

    #[test]
    fn periodic_source_emits_pulse_train() {
        let mut s = PeriodicSource::new(100, 10, 5);
        assert_eq!(s.next_interval(), Some(Interval::new(5, 15)));
        assert_eq!(s.next_interval(), Some(Interval::new(105, 115)));
        assert_eq!(s.next_interval(), Some(Interval::new(205, 215)));
    }

    #[test]
    fn zero_duration_periodic_source_is_empty() {
        let mut s = PeriodicSource::new(100, 0, 0);
        assert_eq!(s.next_interval(), None);
    }

    #[test]
    fn component_fractions() {
        let c = Component::Periodic {
            period: 10 * MS,
            duration: 250_000,
        };
        assert!((c.net_fraction() - 0.025).abs() < 1e-12);
        let c = Component::Poisson {
            rate_hz: 10.0,
            duration: DurationDist::Fixed(2_500_000),
        };
        assert!((c.net_fraction() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn composite_sums_components() {
        let m = CompositeModel::new(
            "two",
            vec![
                Component::Periodic {
                    period: MS,
                    duration: 10_000,
                },
                Component::Periodic {
                    period: MS,
                    duration: 5_000,
                },
            ],
            PhasePolicy::Aligned,
        );
        assert!((m.net_fraction() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn composite_realized_fraction_close_to_nominal() {
        let m = CompositeModel::new(
            "p+p",
            vec![
                Component::Periodic {
                    period: MS,
                    duration: 10_000, // 1%
                },
                Component::Poisson {
                    rate_hz: 100.0,
                    duration: DurationDist::Fixed(100_000), // 1%
                },
            ],
            PhasePolicy::Random,
        );
        let f = realized_fraction(&m, 0, 17, 30 * SEC);
        // Overlap makes realized slightly below nominal 2%.
        assert!(f > 0.015 && f < 0.0205, "realized {f}");
    }

    #[test]
    fn commodity_os_profile_properties() {
        let m = commodity_os();
        assert_eq!(m.components().len(), 3);
        let nominal = m.net_fraction();
        assert!((0.005..0.05).contains(&nominal), "nominal {nominal}");
        let f = realized_fraction(&m, 0, 23, 30 * SEC);
        assert!(
            (f - nominal).abs() < 0.01,
            "realized {f} vs nominal {nominal}"
        );
    }

    #[test]
    fn composite_nodes_differ_under_random_policy() {
        let m = commodity_os();
        let s = NodeStream::new(41);
        let mut a = m.instantiate(0, &s);
        let mut b = m.instantiate(1, &s);
        // Realized noise over a long window differs across nodes (random
        // phases and independent Poisson arrivals).
        let na = 10 * SEC - a.work_in(0, 10 * SEC);
        let nb = 10 * SEC - b.work_in(0, 10 * SEC);
        assert_ne!(na, nb);
        assert!(na > 0 && nb > 0);
    }

    #[test]
    fn describe_includes_name() {
        assert!(commodity_os().describe().contains("commodity-os"));
    }
}

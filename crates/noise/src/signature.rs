//! Noise signatures: the (frequency, duration) pairs the paper injects.
//!
//! The study's central experimental design holds the *net* noise intensity
//! fixed (e.g. 2.5% of CPU) while varying how it is delivered: a few long
//! pulses (10 Hz × 2500 µs), an intermediate shape (100 Hz × 250 µs), or
//! many short pulses (1000 Hz × 25 µs). [`Signature`] captures one such
//! shape; [`canonical_set`] builds the paper's Table-1 sets at any net
//! intensity.

use ghost_engine::time::{format_time, hz_to_period, Time, SEC};

use crate::model::PhasePolicy;
use crate::periodic::PeriodicModel;

/// A periodic noise signature: pulses of `duration` at `hz` per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature {
    hz: f64,
    duration: Time,
}

impl Signature {
    /// A signature with the given frequency and pulse duration.
    ///
    /// # Panics
    ///
    /// Panics if the implied duty cycle is >= 1 (pulse longer than period)
    /// or the frequency is not positive and finite.
    pub fn new(hz: f64, duration: Time) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "invalid frequency {hz}");
        let period = hz_to_period(hz);
        assert!(
            duration < period,
            "duration {} >= period {} at {hz} Hz",
            duration,
            period
        );
        Self { hz, duration }
    }

    /// The signature delivering `net_fraction` of noise at `hz`: duration is
    /// derived as `net_fraction / hz`.
    pub fn from_net(hz: f64, net_fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&net_fraction),
            "net fraction out of range: {net_fraction}"
        );
        let duration = (net_fraction * SEC as f64 / hz).round() as Time;
        Self::new(hz, duration)
    }

    /// Pulse frequency in Hz.
    pub fn hz(&self) -> f64 {
        self.hz
    }

    /// Pulse duration in nanoseconds.
    pub fn duration(&self) -> Time {
        self.duration
    }

    /// Pulse period in nanoseconds.
    pub fn period(&self) -> Time {
        hz_to_period(self.hz)
    }

    /// Net stolen fraction `hz * duration`.
    pub fn net_fraction(&self) -> f64 {
        self.hz * self.duration as f64 / SEC as f64
    }

    /// The periodic noise model for this signature under a phase policy.
    pub fn periodic_model(&self, policy: PhasePolicy) -> PeriodicModel {
        PeriodicModel::new(self.period(), self.duration, policy)
    }

    /// Short label for tables, e.g. `"10Hz x 2.500ms"`.
    pub fn label(&self) -> String {
        format!("{:.0}Hz x {}", self.hz, format_time(self.duration))
    }
}

/// The paper's canonical frequency ladder: 10 Hz, 100 Hz, 1000 Hz.
pub const CANONICAL_FREQUENCIES: [f64; 3] = [10.0, 100.0, 1000.0];

/// The canonical signature set at a given net intensity: one signature per
/// canonical frequency, all delivering the same net fraction.
///
/// At 2.5% this reproduces the paper's set:
/// 10 Hz × 2500 µs, 100 Hz × 250 µs, 1000 Hz × 25 µs.
pub fn canonical_set(net_fraction: f64) -> Vec<Signature> {
    CANONICAL_FREQUENCIES
        .iter()
        .map(|&hz| Signature::from_net(hz, net_fraction))
        .collect()
}

/// The paper's headline injection intensity: 2.5% of each node's CPU.
pub const CANONICAL_NET: f64 = 0.025;

/// Convenience: the 2.5% canonical signatures.
pub fn canonical_2_5pct() -> Vec<Signature> {
    canonical_set(CANONICAL_NET)
}

/// A duration sweep at fixed net intensity: signatures whose pulse lengths
/// ladder from `lo` to `hi` multiplying by 2 each step, with frequency
/// derived to keep `net_fraction` constant.
pub fn duration_sweep(net_fraction: f64, lo: Time, hi: Time) -> Vec<Signature> {
    assert!(lo > 0 && hi >= lo);
    let mut out = Vec::new();
    let mut d = lo;
    while d <= hi {
        let hz = net_fraction * SEC as f64 / d as f64;
        out.push(Signature::new(hz, d));
        if d > hi / 2 {
            break;
        }
        d *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_engine::time::{MS, US};
    use proptest::prelude::*;

    #[test]
    fn canonical_2_5_matches_paper_table1() {
        let set = canonical_2_5pct();
        assert_eq!(set.len(), 3);
        assert_eq!(set[0].hz(), 10.0);
        assert_eq!(set[0].duration(), 2500 * US);
        assert_eq!(set[1].hz(), 100.0);
        assert_eq!(set[1].duration(), 250 * US);
        assert_eq!(set[2].hz(), 1000.0);
        assert_eq!(set[2].duration(), 25 * US);
        for s in &set {
            assert!((s.net_fraction() - 0.025).abs() < 1e-9, "{:?}", s);
        }
    }

    #[test]
    fn from_net_derives_duration() {
        let s = Signature::from_net(10.0, 0.10);
        assert_eq!(s.duration(), 10 * MS);
        assert!((s.net_fraction() - 0.10).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = ">= period")]
    fn oversized_duration_panics() {
        Signature::new(1000.0, 2 * MS);
    }

    #[test]
    #[should_panic(expected = "net fraction out of range")]
    fn bad_net_fraction_panics() {
        Signature::from_net(10.0, 1.5);
    }

    #[test]
    fn label_formatting() {
        let s = Signature::new(10.0, 2500 * US);
        assert_eq!(s.label(), "10Hz x 2.500ms");
    }

    #[test]
    fn periodic_model_roundtrip() {
        let s = Signature::new(100.0, 250 * US);
        let m = s.periodic_model(PhasePolicy::Aligned);
        assert_eq!(m.period(), 10 * MS);
        assert_eq!(m.duration(), 250 * US);
    }

    #[test]
    fn duration_sweep_holds_net_constant() {
        let sigs = duration_sweep(0.025, 25 * US, 3200 * US);
        assert!(sigs.len() >= 7, "{}", sigs.len());
        for s in &sigs {
            assert!((s.net_fraction() - 0.025).abs() < 1e-6, "{s:?}");
        }
        // Durations double.
        for w in sigs.windows(2) {
            assert_eq!(w[1].duration(), w[0].duration() * 2);
        }
    }

    proptest! {
        #[test]
        fn from_net_fraction_is_exactly_recovered(
            hz in 1.0f64..10_000.0,
            net in 0.001f64..0.5,
        ) {
            let s = Signature::from_net(hz, net);
            // Rounded to nanoseconds: recovery error bounded by hz/1e9.
            let err = (s.net_fraction() - net).abs();
            prop_assert!(err <= hz / 1e9 + 1e-12, "err {err}");
        }
    }
}

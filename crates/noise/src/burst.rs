//! Bursty (Markov on/off) noise: interrupt storms.
//!
//! Some real noise sources are neither periodic nor memoryless: a NIC
//! interrupt storm, a paging flurry, or a logging daemon flushes arrive in
//! *episodes* — long quiet stretches, then a dense burst of short pulses.
//! [`BurstNoise`] models this as a two-state continuous-time Markov process:
//! exponential quiet sojourns, exponential burst lengths, and within a burst
//! a dense pulse train. Its net intensity can match a canonical signature
//! while concentrating the damage even more than 10 Hz periodic pulses do.

use ghost_engine::rng::{NodeStream, Xoshiro256};
use ghost_engine::time::Time;

use crate::intervals::{Interval, IntervalNoise, IntervalSource};
use crate::model::{streams, NodeNoise, NoiseModel};

/// Two-state bursty noise configuration.
#[derive(Debug, Clone, Copy)]
pub struct BurstNoise {
    /// Mean quiet-period length (ns).
    pub mean_quiet: Time,
    /// Mean burst-episode length (ns).
    pub mean_burst: Time,
    /// Pulse length within a burst (ns).
    pub pulse: Time,
    /// Pulse period within a burst (ns); duty inside a burst is
    /// `pulse / pulse_period`.
    pub pulse_period: Time,
}

impl BurstNoise {
    /// Create a burst process.
    ///
    /// # Panics
    ///
    /// Panics on zero parameters or `pulse > pulse_period`.
    pub fn new(mean_quiet: Time, mean_burst: Time, pulse: Time, pulse_period: Time) -> Self {
        assert!(
            mean_quiet > 0 && mean_burst > 0,
            "sojourns must be positive"
        );
        assert!(
            pulse > 0 && pulse <= pulse_period,
            "pulse {pulse} must be in (0, period {pulse_period}]"
        );
        Self {
            mean_quiet,
            mean_burst,
            pulse,
            pulse_period,
        }
    }

    /// Long-run stolen fraction:
    /// `burst_share * in-burst duty` with
    /// `burst_share = mean_burst / (mean_quiet + mean_burst)`.
    pub fn nominal_fraction(&self) -> f64 {
        let share = self.mean_burst as f64 / (self.mean_quiet + self.mean_burst) as f64;
        share * self.pulse as f64 / self.pulse_period as f64
    }
}

/// Interval stream of one node's burst process.
pub struct BurstSource {
    cfg: BurstNoise,
    rng: Xoshiro256,
    /// End of the current burst episode (pulses are emitted while inside).
    burst_end: Time,
    /// Next pulse start.
    next_pulse: Time,
}

impl BurstSource {
    fn advance_to_next_burst(&mut self) {
        // Quiet sojourn, then a new burst window.
        let quiet = self.rng.exp(1.0 / self.cfg.mean_quiet as f64).round() as Time;
        let start = self.burst_end + quiet.max(1);
        let len = self.rng.exp(1.0 / self.cfg.mean_burst as f64).round() as Time;
        self.burst_end = start + len.max(self.cfg.pulse);
        self.next_pulse = start;
    }
}

impl IntervalSource for BurstSource {
    fn next_interval(&mut self) -> Option<Interval> {
        // Emit pulses until the burst window closes, then jump to the next
        // burst.
        while self.next_pulse + self.cfg.pulse > self.burst_end {
            self.advance_to_next_burst();
        }
        let start = self.next_pulse;
        self.next_pulse = start + self.cfg.pulse_period;
        Some(Interval::new(start, start + self.cfg.pulse))
    }
}

impl NoiseModel for BurstNoise {
    fn instantiate(&self, node: usize, s: &NodeStream) -> Box<dyn NodeNoise> {
        let mut rng = s.for_node(node, streams::ARRIVALS ^ 0xB0B0);
        // Random initial phase: start mid-quiet on average.
        let first_quiet = rng.exp(1.0 / self.mean_quiet as f64).round() as Time;
        let burst_end = first_quiet.max(1);
        let src = BurstSource {
            cfg: *self,
            rng,
            burst_end,
            // Equal to burst_end: the first pull immediately advances to the
            // first real burst episode.
            next_pulse: burst_end,
        };
        Box::new(IntervalNoise::new(src))
    }

    fn net_fraction(&self) -> f64 {
        self.nominal_fraction()
    }

    fn describe(&self) -> String {
        format!(
            "burst (quiet ~{}, burst ~{}, {} / {} pulses, {:.2}% net)",
            ghost_engine::time::format_time(self.mean_quiet),
            ghost_engine::time::format_time(self.mean_burst),
            ghost_engine::time::format_time(self.pulse),
            ghost_engine::time::format_time(self.pulse_period),
            self.nominal_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::realized_fraction;
    use ghost_engine::time::{MS, SEC, US};

    fn storm() -> BurstNoise {
        // Quiet ~190 ms, bursts ~10 ms at 50% duty: 2.5% net.
        BurstNoise::new(190 * MS, 10 * MS, 50 * US, 100 * US)
    }

    #[test]
    fn nominal_fraction_formula() {
        let b = storm();
        assert!((b.nominal_fraction() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn realized_fraction_near_nominal() {
        let b = storm();
        // Long horizon: episode process needs many cycles to converge.
        let f = realized_fraction(&b, 0, 3, 200 * SEC);
        assert!(
            (f - 0.025).abs() < 0.012,
            "realized {f} vs nominal {}",
            b.nominal_fraction()
        );
    }

    #[test]
    fn bursts_are_clustered() {
        // Within one episode pulses are pulse_period apart; across episodes
        // gaps are ~mean_quiet. Verify both gap populations exist.
        let b = storm();
        let s = NodeStream::new(5);
        let mut n = b.instantiate(0, &s);
        let mut frees = Vec::new();
        let mut t = 0;
        // Probe every 50 us over ~3 s: covers many quiet/burst episodes.
        for _ in 0..60_000 {
            let f = n.next_free(t);
            frees.push(f);
            t = f + 50 * US;
        }
        // Pulse onsets: instants where next_free jumped.
        let mut gaps = Vec::new();
        let mut last_hit = None;
        for (i, w) in frees.windows(2).enumerate() {
            if w[1] > w[0] + 50 * US {
                if let Some(l) = last_hit {
                    gaps.push(i - l);
                }
                last_hit = Some(i);
            }
        }
        assert!(!gaps.is_empty(), "no noise encountered");
        let small = gaps.iter().filter(|&&g| g < 20).count();
        let large = gaps.iter().filter(|&&g| g > 500).count();
        assert!(small > 0, "no intra-burst clustering: {gaps:?}");
        assert!(
            large > 0,
            "no quiet periods: gaps max {:?}",
            gaps.iter().max()
        );
    }

    #[test]
    fn reproducible_per_seed() {
        let b = storm();
        let f1 = realized_fraction(&b, 2, 9, 20 * SEC);
        let f2 = realized_fraction(&b, 2, 9, 20 * SEC);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "must be in (0, period")]
    fn oversized_pulse_panics() {
        BurstNoise::new(MS, MS, 200, 100);
    }

    #[test]
    fn describe_mentions_burst() {
        assert!(storm().describe().contains("burst"));
    }
}

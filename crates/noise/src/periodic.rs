//! Periodic noise: the paper's injected signatures.
//!
//! The SC'07 injection framework steals the CPU for a fixed `duration` once
//! per `period` (i.e. at a fixed frequency). [`PeriodicNoise`] models exactly
//! that: noise occupies `[k*period + phase, k*period + phase + duration)` for
//! every integer `k >= 0`. `advance` is closed-form (O(1)), which is what
//! lets GhostSim run thousands of simulated nodes for thousands of simulated
//! seconds cheaply.

use ghost_engine::rng::NodeStream;
use ghost_engine::time::{Time, Work};

use crate::model::{NodeNoise, NoiseModel, PhasePolicy};

/// Per-node periodic noise process (one instance per node; `phase` differs
/// across nodes according to the experiment's [`PhasePolicy`]).
#[derive(Debug, Clone, Copy)]
pub struct PeriodicNoise {
    period: Time,
    duration: Time,
    phase: Time,
}

impl PeriodicNoise {
    /// Create a process with noise pulses of `duration` every `period`
    /// nanoseconds, offset by `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `duration >= period` (the CPU would never be free) unless
    /// `duration == 0` (degenerate noiseless process, any period accepted).
    pub fn new(period: Time, duration: Time, phase: Time) -> Self {
        if duration > 0 {
            assert!(
                duration < period,
                "noise duration {duration} must be < period {period}"
            );
        }
        let phase = if period == 0 { 0 } else { phase % period };
        Self {
            period,
            duration,
            phase,
        }
    }

    /// The pulse period in nanoseconds.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The pulse duration in nanoseconds.
    pub fn duration(&self) -> Time {
        self.duration
    }

    /// This node's phase offset in nanoseconds.
    pub fn phase(&self) -> Time {
        self.phase
    }

    /// Long-run stolen fraction `duration / period`.
    pub fn net_fraction(&self) -> f64 {
        if self.duration == 0 || self.period == 0 {
            0.0
        } else {
            self.duration as f64 / self.period as f64
        }
    }

    /// Position of `t` within the pulse cycle: `(t - phase) mod period`.
    ///
    /// The pulse train is bi-infinite (steady state): a pulse whose start
    /// wraps below zero still covers the beginning of the timeline, so the
    /// process has no start-up transient and `phase` is a pure modular
    /// offset.
    #[inline]
    fn cycle_pos(&self, t: Time) -> Time {
        debug_assert!(self.period > 0);
        // t + period - phase avoids underflow since phase < period.
        (t + (self.period - self.phase)) % self.period
    }

    /// Noise mass of the bi-infinite train in `(-inf, x)`, up to a constant
    /// (differences are well-defined).
    fn noise_mass(&self, x: Time) -> i128 {
        let p = self.period as i128;
        let d = self.duration as i128;
        let xx = x as i128 - self.phase as i128;
        let c = xx.div_euclid(p);
        let r = xx.rem_euclid(p);
        c * d + r.min(d)
    }

    /// Total noise overlap with `[0, t)`.
    fn noise_before(&self, t: Time) -> Time {
        if self.duration == 0 || self.period == 0 {
            return 0;
        }
        (self.noise_mass(t) - self.noise_mass(0)) as Time
    }
}

impl NodeNoise for PeriodicNoise {
    fn advance(&mut self, t: Time, work: Work) -> Time {
        if self.duration == 0 {
            return t + work;
        }
        let p = self.period;
        let d = self.duration;
        // Move to the first noise-free instant at or after t.
        let r = self.cycle_pos(t);
        let (t0, r0) = if r < d { (t + (d - r), d) } else { (t, r) };
        // Free time remaining in the current cycle.
        let free_now = p - r0;
        if work <= free_now {
            return t0 + work;
        }
        let rest = work - free_now;
        let free_per_cycle = p - d;
        let full = rest / free_per_cycle;
        let rem = rest % free_per_cycle;
        if rem == 0 {
            // Finishes exactly at the end of the `full`-th subsequent cycle.
            t0 + free_now + full * p
        } else {
            t0 + free_now + full * p + d + rem
        }
    }

    fn work_in(&mut self, t0: Time, t1: Time) -> Work {
        debug_assert!(t1 >= t0);
        (t1 - t0) - (self.noise_before(t1) - self.noise_before(t0))
    }
}

/// Experiment-level periodic model: a [`crate::Signature`] plus a phase
/// policy, instantiating one [`PeriodicNoise`] per node.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicModel {
    period: Time,
    duration: Time,
    policy: PhasePolicy,
}

impl PeriodicModel {
    /// Create a model with the given pulse period/duration and phase policy.
    pub fn new(period: Time, duration: Time, policy: PhasePolicy) -> Self {
        // Validate the (period, duration) pair eagerly.
        let _ = PeriodicNoise::new(period, duration, 0);
        Self {
            period,
            duration,
            policy,
        }
    }

    /// The pulse period in nanoseconds.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The pulse duration in nanoseconds.
    pub fn duration(&self) -> Time {
        self.duration
    }
}

impl NoiseModel for PeriodicModel {
    fn instantiate(&self, node: usize, streams: &NodeStream) -> Box<dyn NodeNoise> {
        let phase = self.policy.phase_for(node, self.period, streams);
        Box::new(PeriodicNoise::new(self.period, self.duration, phase))
    }

    fn net_fraction(&self) -> f64 {
        PeriodicNoise::new(self.period, self.duration, 0).net_fraction()
    }

    fn describe(&self) -> String {
        let hz = ghost_engine::time::period_to_hz(self.period);
        format!(
            "periodic {:.0} Hz x {} ({:.2}% net, {:?} phase)",
            hz,
            ghost_engine::time::format_time(self.duration),
            self.net_fraction() * 100.0,
            self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_engine::time::{MS, SEC, US};
    use proptest::prelude::*;

    /// Reference implementation: walk pulses one by one (independent of the
    /// closed form under test). The closed form models a bi-infinite pulse
    /// train; shifting the query by one period makes the k>=0 train below
    /// equivalent (the train is P-periodic), so callers use
    /// `reference_advance(p, d, phi, t + p, w) - p`.
    fn reference_advance_shifted(p: Time, d: Time, phi: Time, t: Time, work: Work) -> Time {
        reference_advance(p, d, phi, t + p, work) - p
    }

    fn reference_advance(p: Time, d: Time, phi: Time, t: Time, work: Work) -> Time {
        if d == 0 {
            return t + work;
        }
        let mut now = t;
        let mut left = work;
        let mut k = if now <= phi { 0 } else { (now - phi) / p };
        loop {
            let start = phi + k * p;
            let end = start + d;
            if now >= start && now < end {
                now = end; // inside this pulse
            } else if now < start {
                let gap = start - now;
                if left <= gap {
                    return now + left;
                }
                left -= gap;
                now = end;
            }
            // now >= end: pulse fully in the past, move to the next.
            k += 1;
        }
    }

    #[test]
    fn no_noise_when_duration_zero() {
        let mut n = PeriodicNoise::new(MS, 0, 0);
        assert_eq!(n.advance(5, 100), 105);
        assert_eq!(n.net_fraction(), 0.0);
        assert_eq!(n.work_in(0, SEC), SEC);
    }

    #[test]
    #[should_panic(expected = "must be < period")]
    fn duration_ge_period_panics() {
        PeriodicNoise::new(MS, MS, 0);
    }

    #[test]
    fn advance_within_free_region() {
        // 100 Hz x 250us, phase 0: noise [0, 250us), free [250us, 10ms).
        let mut n = PeriodicNoise::new(10 * MS, 250 * US, 0);
        // Start at t=0 -> inside noise, work starts at 250us.
        assert_eq!(n.advance(0, US), 250 * US + US);
        // Start in the free region with room to spare.
        assert_eq!(n.advance(MS, US), MS + US);
    }

    #[test]
    fn advance_spanning_pulses() {
        // 1 kHz x 250us: period 1ms, free 750us per cycle, phase 0.
        let mut n = PeriodicNoise::new(MS, 250 * US, 0);
        // 1.5ms of work starting at 250us: consumes 750us (to 1ms), pulse to
        // 1.25ms, 750us more (to 2ms) -> 1.5ms done exactly at 2ms.
        assert_eq!(n.advance(250 * US, 1500 * US), 2 * MS);
        // One extra ns lands after the next pulse.
        assert_eq!(n.advance(250 * US, 1500 * US + 1), 2 * MS + 250 * US + 1);
    }

    #[test]
    fn next_free_semantics() {
        let mut n = PeriodicNoise::new(MS, 100 * US, 0);
        assert_eq!(n.next_free(0), 100 * US); // inside the first pulse
        assert_eq!(n.next_free(500 * US), 500 * US); // already free
        assert_eq!(n.next_free(MS + 50 * US), MS + 100 * US); // second pulse
    }

    #[test]
    fn phase_shifts_pulses() {
        let mut n = PeriodicNoise::new(MS, 100 * US, 300 * US);
        // Noise at [300us, 400us).
        assert_eq!(n.next_free(0), 0);
        assert_eq!(n.next_free(350 * US), 400 * US);
    }

    #[test]
    fn work_in_full_cycles() {
        let mut n = PeriodicNoise::new(MS, 250 * US, 0);
        assert_eq!(n.work_in(0, 10 * MS), 10 * (MS - 250 * US));
        // Window aligned to a pulse only.
        assert_eq!(n.work_in(0, 250 * US), 0);
        // Free stretch only.
        assert_eq!(n.work_in(250 * US, MS), 750 * US);
    }

    #[test]
    fn work_in_with_phase_before_first_pulse() {
        let mut n = PeriodicNoise::new(MS, 100 * US, 600 * US);
        assert_eq!(n.work_in(0, 600 * US), 600 * US);
        assert_eq!(n.work_in(0, 700 * US), 600 * US);
        assert_eq!(n.work_in(0, MS), 900 * US);
    }

    #[test]
    fn net_fraction_matches_signature() {
        let n = PeriodicNoise::new(100 * MS, 2500 * US, 0);
        assert!((n.net_fraction() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn long_run_elapsed_matches_net_fraction() {
        // Executing work continuously: elapsed/work -> 1/(1-f).
        let mut n = PeriodicNoise::new(10 * MS, 250 * US, 7 * MS);
        let work = 10 * SEC;
        let end = n.advance(0, work);
        let ratio = end as f64 / work as f64;
        let expect = 1.0 / (1.0 - 0.025);
        assert!((ratio - expect).abs() < 1e-3, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn model_instantiates_with_policy_phases() {
        let streams = NodeStream::new(77);
        let m = PeriodicModel::new(MS, 100 * US, PhasePolicy::Aligned);
        let mut a = m.instantiate(0, &streams);
        let mut b = m.instantiate(123, &streams);
        assert_eq!(a.next_free(0), 100 * US);
        assert_eq!(b.next_free(0), 100 * US);

        let m = PeriodicModel::new(MS, 100 * US, PhasePolicy::Staggered { nodes: 2 });
        let mut b = m.instantiate(1, &streams);
        assert_eq!(b.next_free(0), 0); // phase 500us: t=0 free
        assert_eq!(b.next_free(550 * US), 600 * US);
    }

    #[test]
    fn describe_mentions_frequency_and_net() {
        let m = PeriodicModel::new(100 * MS, 2500 * US, PhasePolicy::Random);
        let d = m.describe();
        assert!(d.contains("10 Hz"), "{d}");
        assert!(d.contains("2.50%"), "{d}");
    }

    proptest! {
        #[test]
        fn advance_matches_reference(
            p in 2u64..5_000,
            dfrac in 1u64..100,
            phi in 0u64..5_000,
            t in 0u64..50_000,
            work in 0u64..50_000,
        ) {
            let d = (p * dfrac / 100).min(p - 1);
            let mut n = PeriodicNoise::new(p, d, phi % p);
            let got = n.advance(t, work);
            let expect = reference_advance_shifted(p, d, phi % p, t, work);
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn advance_at_least_work(
            p in 2u64..10_000,
            d in 0u64..9_999,
            phi in 0u64..10_000,
            t in 0u64..1_000_000,
            work in 0u64..1_000_000,
        ) {
            prop_assume!(d < p);
            let mut n = PeriodicNoise::new(p, d, phi % p);
            let end = n.advance(t, work);
            prop_assert!(end >= t + work);
        }

        #[test]
        fn work_conservation(
            p in 2u64..5_000,
            dfrac in 0u64..100,
            phi in 0u64..5_000,
            t in 0u64..100_000,
            work in 1u64..100_000,
        ) {
            // The window [start_of_work, completion) must contain exactly
            // `work` free nanoseconds when work starts immediately at the
            // first free instant >= t.
            let d = (p * dfrac / 100).min(p - 1);
            let mut n = PeriodicNoise::new(p, d, phi % p);
            let start = n.next_free(t);
            let end = n.advance(t, work);
            let mut n2 = PeriodicNoise::new(p, d, phi % p);
            prop_assert_eq!(n2.work_in(start, end), work);
        }

        #[test]
        fn advance_is_monotone_in_t(
            p in 2u64..5_000,
            dfrac in 0u64..100,
            t1 in 0u64..50_000,
            dt in 0u64..50_000,
            work in 0u64..50_000,
        ) {
            let d = (p * dfrac / 100).min(p - 1);
            let mut a = PeriodicNoise::new(p, d, 0);
            let mut b = PeriodicNoise::new(p, d, 0);
            prop_assert!(a.advance(t1, work) <= b.advance(t1 + dt, work));
        }

        #[test]
        fn work_in_is_additive(
            p in 2u64..5_000,
            dfrac in 0u64..100,
            phi in 0u64..5_000,
            a in 0u64..50_000,
            b in 0u64..50_000,
            c in 0u64..50_000,
        ) {
            let d = (p * dfrac / 100).min(p - 1);
            let mut ts = [a, b, c];
            ts.sort_unstable();
            let [x, y, z] = ts;
            let mut n = PeriodicNoise::new(p, d, phi % p);
            let total = n.work_in(x, z);
            let mut n2 = PeriodicNoise::new(p, d, phi % p);
            let part = n2.work_in(x, y) + n2.work_in(y, z);
            prop_assert_eq!(total, part);
        }
    }
}

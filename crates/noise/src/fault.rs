//! Deterministic fault plans: the unbounded tail of the noise spectrum.
//!
//! The SC'07 study injects *bounded* kernel interference; this module
//! models the same spectrum's extreme events — one-off stalls (Afzal et
//! al.'s injected delays), persistent stragglers, message drop/duplication
//! windows, and permanent rank crashes — as first-class, seed-reproducible
//! simulation inputs. A [`FaultPlan`] is a list of [`FaultKind`]s addressed
//! by `(rank, time-window)`; all probabilistic draws it induces come from
//! the dedicated [`crate::model::streams::FAULTS`] per-node RNG stream, so
//! adding a fault never perturbs the noise-phase, arrival, or imbalance
//! sequences of an experiment.
//!
//! Determinism contract: a fault plan is plain integer data (`Eq`/`Hash`),
//! and for a fixed `(seed, plan)` every induced event — which packets drop,
//! how long each retransmission ladder runs, when a rank halts — is a pure
//! function of the experiment seed. An empty plan is guaranteed to be
//! byte-identical to not having a plan at all: no RNG stream is created,
//! no wrapper is installed, no draw is made.

use ghost_engine::time::{Time, Work};

use crate::model::NodeNoise;

/// One fault, scoped to a single rank.
///
/// All fields are integers so plans can serve as memo-cache keys
/// (`Eq`/`Hash`); fractional quantities use parts-per-million (`_ppm`) or
/// thousandths (`_x1000`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A transient stall: the rank's CPU freezes for `duration` ns starting
    /// at `at` (an extreme one-off noise pulse; Afzal-style injected delay).
    Delay {
        /// Stall onset (ns).
        at: Time,
        /// Stall length (ns).
        duration: Time,
    },
    /// A persistent straggler: every compute segment takes
    /// `factor_x1000 / 1000` times its requested work.
    Straggler {
        /// Slowdown factor in thousandths (1500 = 1.5x). Values below
        /// 1000 are clamped to 1000 (a fault cannot speed a rank up).
        factor_x1000: u32,
    },
    /// A permanent crash: the rank halts at the first scheduler boundary
    /// at or after `at` and never sends or receives again.
    Crash {
        /// Crash instant (ns).
        at: Time,
    },
    /// Message-drop window: sends departing this rank within `[from, until)`
    /// are dropped with probability `prob_ppm / 1e6` per transmission
    /// attempt (each drop triggers a retransmission).
    Drop {
        /// Window start (ns).
        from: Time,
        /// Window end (ns, exclusive).
        until: Time,
        /// Per-attempt drop probability in parts per million.
        prob_ppm: u32,
    },
    /// Message-duplication window: sends departing this rank within
    /// `[from, until)` are transmitted twice with probability
    /// `prob_ppm / 1e6` (the sender pays the extra overhead; the receiver
    /// discards the duplicate by sequence number at no cost).
    Duplicate {
        /// Window start (ns).
        from: Time,
        /// Window end (ns, exclusive).
        until: Time,
        /// Duplication probability in parts per million.
        prob_ppm: u32,
    },
}

/// A fault assigned to one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// The afflicted rank.
    pub rank: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic fault schedule for one simulated run.
///
/// Built with the chainable `with_*` constructors; queried by the executor
/// per rank. The default (empty) plan induces zero behavioural difference.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of fault events in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The raw fault events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add an arbitrary fault event.
    pub fn with(mut self, rank: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { rank, kind });
        self
    }

    /// Add a one-off `duration`-long stall on `rank` starting at `at`.
    pub fn with_delay(self, rank: usize, at: Time, duration: Time) -> Self {
        self.with(rank, FaultKind::Delay { at, duration })
    }

    /// Make `rank` a persistent straggler (`factor_x1000 / 1000` slowdown).
    pub fn with_straggler(self, rank: usize, factor_x1000: u32) -> Self {
        self.with(rank, FaultKind::Straggler { factor_x1000 })
    }

    /// Crash `rank` permanently at `at`.
    pub fn with_crash(self, rank: usize, at: Time) -> Self {
        self.with(rank, FaultKind::Crash { at })
    }

    /// Drop messages departing `rank` in `[from, until)` with probability
    /// `prob_ppm / 1e6` per attempt.
    pub fn with_drop_window(self, rank: usize, from: Time, until: Time, prob_ppm: u32) -> Self {
        self.with(
            rank,
            FaultKind::Drop {
                from,
                until,
                prob_ppm,
            },
        )
    }

    /// Duplicate messages departing `rank` in `[from, until)` with
    /// probability `prob_ppm / 1e6`.
    pub fn with_duplicate_window(
        self,
        rank: usize,
        from: Time,
        until: Time,
        prob_ppm: u32,
    ) -> Self {
        self.with(
            rank,
            FaultKind::Duplicate {
                from,
                until,
                prob_ppm,
            },
        )
    }

    /// Earliest crash time scheduled for `rank`, if any.
    pub fn crash_at(&self, rank: usize) -> Option<Time> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash { at } if e.rank == rank => Some(at),
                _ => None,
            })
            .min()
    }

    /// Combined straggler factor for `rank` in thousandths (1000 = none).
    /// Multiple straggler faults compound multiplicatively.
    pub fn straggle_x1000(&self, rank: usize) -> u64 {
        let mut f: u64 = 1000;
        for e in &self.events {
            if let FaultKind::Straggler { factor_x1000 } = e.kind {
                if e.rank == rank {
                    f = f * u64::from(factor_x1000.max(1000)) / 1000;
                }
            }
        }
        f
    }

    /// One-off stalls scheduled for `rank`, as `(at, duration)` pairs sorted
    /// by onset.
    pub fn delays(&self, rank: usize) -> Vec<(Time, Time)> {
        let mut v: Vec<(Time, Time)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Delay { at, duration } if e.rank == rank && duration > 0 => {
                    Some((at, duration))
                }
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Plan-level drop probability (ppm) for a message departing `rank` at
    /// `t`: the maximum over all matching drop windows.
    pub fn drop_ppm(&self, rank: usize, t: Time) -> u32 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Drop {
                    from,
                    until,
                    prob_ppm,
                } if e.rank == rank && t >= from && t < until => Some(prob_ppm),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Plan-level duplication probability (ppm) for a message departing
    /// `rank` at `t`.
    pub fn dup_ppm(&self, rank: usize, t: Time) -> u32 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Duplicate {
                    from,
                    until,
                    prob_ppm,
                } if e.rank == rank && t >= from && t < until => Some(prob_ppm),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether `rank` has any drop/duplication windows (and therefore needs
    /// a fault RNG stream even without a machine-wide lossy link).
    pub fn has_link_faults(&self, rank: usize) -> bool {
        self.events.iter().any(|e| {
            e.rank == rank
                && matches!(
                    e.kind,
                    FaultKind::Drop { prob_ppm, .. } | FaultKind::Duplicate { prob_ppm, .. }
                    if prob_ppm > 0
                )
        })
    }

    /// Wrap `noise` with this plan's one-off stalls for `rank` (a no-op
    /// returning `noise` unchanged when the rank has none).
    pub fn apply_delays(&self, rank: usize, noise: Box<dyn NodeNoise>) -> Box<dyn NodeNoise> {
        let mut wrapped = noise;
        for (at, duration) in self.delays(rank) {
            wrapped = Box::new(OneOffDelay::new(wrapped, at, duration));
        }
        wrapped
    }
}

/// A frozen-clock stall wrapped around an arbitrary noise process.
///
/// During `[start, start + duration)` the node's clock is *frozen*: no
/// application work and no inner-noise schedule progress happen; both
/// resume, shifted by `duration`, when the stall ends. This is implemented
/// as a real↔virtual time map (`virtual = real` before the stall,
/// `virtual = real - duration` after it), so each call forwards exactly one
/// monotone query to the inner process — the forward-cursor contract of
/// [`NodeNoise`] holds for arbitrary stateful inner noise.
///
/// A completion that lands exactly on the stall onset is held until the
/// stall ends (the boundary instant belongs to the stall).
pub struct OneOffDelay {
    inner: Box<dyn NodeNoise>,
    start: Time,
    duration: Time,
}

impl OneOffDelay {
    /// Freeze `inner`'s node for `duration` ns starting at `start`.
    pub fn new(inner: Box<dyn NodeNoise>, start: Time, duration: Time) -> Self {
        Self {
            inner,
            start,
            duration,
        }
    }

    /// Map a real instant to the inner process's virtual clock.
    #[inline]
    fn virt(&self, t: Time) -> Time {
        if t <= self.start {
            t
        } else if t < self.start.saturating_add(self.duration) {
            self.start
        } else {
            t - self.duration
        }
    }

    /// Map an inner (virtual) completion back to real time.
    #[inline]
    fn real(&self, v: Time) -> Time {
        if v < self.start {
            v
        } else {
            v.saturating_add(self.duration)
        }
    }
}

impl NodeNoise for OneOffDelay {
    fn advance(&mut self, t: Time, work: Work) -> Time {
        let v = self.virt(t);
        let done = self.inner.advance(v, work);
        self.real(done)
    }

    fn work_in(&mut self, t0: Time, t1: Time) -> Work {
        self.inner.work_in(self.virt(t0), self.virt(t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NoNoise;
    use ghost_engine::time::{MS, US};

    fn stalled(start: Time, dur: Time) -> OneOffDelay {
        OneOffDelay::new(Box::new(NoNoise), start, dur)
    }

    #[test]
    fn work_before_the_stall_is_untouched() {
        let mut d = stalled(100, 50);
        assert_eq!(d.advance(0, 99), 99);
    }

    #[test]
    fn work_crossing_the_stall_is_shifted() {
        let mut d = stalled(100, 50);
        // 120 ns of work from t=0: 100 run, freeze 50, 20 more -> 170.
        assert_eq!(d.advance(0, 120), 170);
    }

    #[test]
    fn completion_on_the_boundary_is_held() {
        let mut d = stalled(100, 50);
        assert_eq!(d.advance(0, 100), 150);
    }

    #[test]
    fn queries_inside_the_stall_wait_for_its_end() {
        let mut d = stalled(100, 50);
        assert_eq!(d.advance(120, 0), 150, "next_free inside the stall");
        assert_eq!(d.advance(130, 10), 160);
    }

    #[test]
    fn after_the_stall_everything_shifts_by_duration() {
        let mut d = stalled(100, 50);
        assert_eq!(d.advance(200, 10), 210);
    }

    #[test]
    fn work_in_excludes_the_stall() {
        let mut d = stalled(100, 50);
        assert_eq!(d.work_in(0, 200), 150);
        let mut d = stalled(100, 50);
        assert_eq!(d.work_in(110, 140), 0, "fully inside the stall");
    }

    #[test]
    fn inner_noise_schedule_is_frozen_not_skipped() {
        use crate::periodic::PeriodicNoise;
        // Periodic noise: 1 ms period, 100 us pulse at phase 0.
        let inner = Box::new(PeriodicNoise::new(MS, 100 * US, 0));
        let mut plain = PeriodicNoise::new(MS, 100 * US, 0);
        let mut d = OneOffDelay::new(inner, 2 * MS, MS);
        // Before the stall both agree.
        assert_eq!(d.advance(0, 500 * US), plain.advance(0, 500 * US));
        // After the stall the wrapped schedule is the plain one shifted by
        // the stall duration.
        let shifted = d.advance(4 * MS, 700 * US);
        let base = plain.advance(3 * MS, 700 * US);
        assert_eq!(shifted, base + MS);
    }

    #[test]
    fn plan_queries_answer_per_rank() {
        let p = FaultPlan::new()
            .with_crash(3, 5 * MS)
            .with_crash(3, 2 * MS)
            .with_straggler(1, 1500)
            .with_straggler(1, 2000)
            .with_delay(0, MS, 100 * US)
            .with_drop_window(2, 0, 10 * MS, 50_000)
            .with_duplicate_window(2, MS, 2 * MS, 10_000);
        assert_eq!(p.crash_at(3), Some(2 * MS), "earliest crash wins");
        assert_eq!(p.crash_at(0), None);
        assert_eq!(p.straggle_x1000(1), 3000, "stragglers compound");
        assert_eq!(p.straggle_x1000(2), 1000);
        assert_eq!(p.delays(0), vec![(MS, 100 * US)]);
        assert_eq!(p.drop_ppm(2, 5 * MS), 50_000);
        assert_eq!(p.drop_ppm(2, 10 * MS), 0, "window end is exclusive");
        assert_eq!(p.drop_ppm(1, 5 * MS), 0);
        assert_eq!(p.dup_ppm(2, MS + 1), 10_000);
        assert!(p.has_link_faults(2));
        assert!(!p.has_link_faults(3));
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn straggler_factor_below_one_is_clamped() {
        let p = FaultPlan::new().with_straggler(0, 500);
        assert_eq!(p.straggle_x1000(0), 1000);
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.crash_at(0), None);
        assert_eq!(p.straggle_x1000(0), 1000);
        assert_eq!(p.drop_ppm(0, 0), 0);
        let mut n = p.apply_delays(0, Box::new(NoNoise));
        assert_eq!(n.advance(0, 123), 123);
    }

    #[test]
    fn plans_are_hashable_cache_keys() {
        use std::collections::HashSet;
        let a = FaultPlan::new().with_crash(1, MS);
        let b = FaultPlan::new().with_crash(1, MS);
        let c = FaultPlan::new().with_crash(1, 2 * MS);
        assert_eq!(a, b);
        let set: HashSet<FaultPlan> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn stacked_delays_accumulate() {
        let p = FaultPlan::new()
            .with_delay(0, 100, 50)
            .with_delay(0, 300, 25);
        let mut n = p.apply_delays(0, Box::new(NoNoise));
        // 400 ns of work from 0: stalls at 100 (+50) and at ~300 (+25).
        let end = n.advance(0, 400);
        assert_eq!(end, 475);
    }
}

//! Descriptive statistics for microbenchmark sample series.

/// Summary statistics of a sample series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a slice of `u64` samples (times or work amounts).
    pub fn of_u64(samples: &[u64]) -> Self {
        let v: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::of_f64(&v)
    }

    /// Summarize a slice of `f64` samples.
    pub fn of_f64(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }

    /// Coefficient of variation (std/mean), 0 for zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Percentile of an already sorted slice using nearest-rank interpolation.
///
/// `q` in `[0, 1]`. Panics in debug builds if the slice is empty.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets plus
/// underflow/overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal-width buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "empty histogram range");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Add many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bucket_center, count)` pairs for plotting.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }
}

/// Sample autocorrelation of a series at the given lag.
///
/// Returns a value in `[-1, 1]`; 0 for constant series or lag >= len.
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum();
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_series() {
        let s = Summary::of_f64(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zeros() {
        let s = Summary::of_f64(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_u64_matches_f64() {
        let a = Summary::of_u64(&[10, 20, 30]);
        let b = Summary::of_f64(&[10.0, 20.0, 30.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 0.25), 2.5);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let s = Summary::of_f64(&[5.0, 5.0, 5.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.0, 0.5, 9.99, 10.0, -1.0, 5.0]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts()[0], 2); // 0.0, 0.5
        assert_eq!(h.counts()[9], 1); // 9.99
        assert_eq!(h.counts()[5], 1); // 5.0
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 4.0, 4);
        let c = h.centers();
        assert_eq!(c[0].0, 0.5);
        assert_eq!(c[3].0, 3.5);
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn histogram_bad_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn autocorrelation_of_periodic_series() {
        // Period-4 series: strong correlation at lag 4, negative at lag 2.
        let series: Vec<f64> = (0..400)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        assert!(autocorrelation(&series, 4) > 0.9);
        assert!(autocorrelation(&series, 2) < 0.0);
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0], 0), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
        assert_eq!(autocorrelation(&[3.0, 3.0, 3.0], 1), 0.0);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let series = [1.0, 5.0, 2.0, 8.0, 3.0];
        assert!((autocorrelation(&series, 0) - 1.0).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn summary_invariants(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
                let s = Summary::of_u64(&samples);
                prop_assert_eq!(s.n, samples.len());
                prop_assert!(s.min <= s.mean && s.mean <= s.max);
                prop_assert!(s.min <= s.p50 && s.p50 <= s.max);
                prop_assert!(s.p50 <= s.p95 + 1e-9 && s.p95 <= s.p99 + 1e-9);
                prop_assert!(s.std >= 0.0);
                // std bounded by half the range for any distribution? No —
                // but by the full range always.
                prop_assert!(s.std <= s.max - s.min + 1e-9);
            }

            #[test]
            fn percentile_is_monotone_in_q(
                mut samples in proptest::collection::vec(-1_000.0f64..1_000.0, 2..100),
                q1 in 0.0f64..1.0,
                q2 in 0.0f64..1.0,
            ) {
                samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                prop_assert!(
                    percentile_sorted(&samples, lo) <= percentile_sorted(&samples, hi) + 1e-9
                );
            }

            #[test]
            fn histogram_conserves_counts(
                samples in proptest::collection::vec(-10.0f64..20.0, 0..300),
            ) {
                let mut h = Histogram::new(0.0, 10.0, 7);
                h.extend(samples.iter().copied());
                let binned: u64 = h.counts().iter().sum();
                prop_assert_eq!(
                    binned + h.underflow() + h.overflow(),
                    samples.len() as u64
                );
                prop_assert_eq!(h.total(), samples.len() as u64);
            }

            #[test]
            fn autocorrelation_bounded(
                series in proptest::collection::vec(-100.0f64..100.0, 2..100),
                lag in 0usize..50,
            ) {
                let r = autocorrelation(&series, lag);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {}", r);
            }
        }
    }
}

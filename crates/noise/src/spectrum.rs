//! Spectral analysis of FTQ series.
//!
//! The classic way to identify *periodic* kernel noise in an FTQ trace is
//! its power spectrum: noise injected at `f` Hz appears as a spike at `f`
//! (and harmonics) in the spectrum of the per-quantum lost-work series. This
//! module provides a small radix-2 FFT and the helpers the figure
//! generators use to verify injection frequency — the simulated counterpart
//! of the paper's injection-verification figures.

/// A complex number (minimal, local to the FFT).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex number `re + im·i`.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }

    #[inline]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the input length is not a power of two.
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2].mul(w);
                data[i + j] = u.add(v);
                data[i + j + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// One-sided power spectrum of a real series.
///
/// The series is mean-removed and zero-padded to the next power of two.
/// Returns `(frequency_hz, power)` pairs for bins `1..n/2` (the DC bin is
/// dropped since the mean was removed).
pub fn power_spectrum(series: &[f64], sample_rate_hz: f64) -> Vec<(f64, f64)> {
    if series.len() < 4 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let n = series.len().next_power_of_two();
    let mut data: Vec<Complex> = series
        .iter()
        .map(|&x| Complex::new(x - mean, 0.0))
        .chain(std::iter::repeat(Complex::zero()))
        .take(n)
        .collect();
    fft(&mut data);
    let df = sample_rate_hz / n as f64;
    (1..n / 2)
        .map(|k| (k as f64 * df, data[k].norm_sq()))
        .collect()
}

/// The frequency with the highest spectral power, or `None` for series too
/// short or flat to analyze.
pub fn dominant_frequency(series: &[f64], sample_rate_hz: f64) -> Option<f64> {
    let spec = power_spectrum(series, sample_rate_hz);
    let (freq, power) = spec
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN power"))?;
    let total: f64 = spec.iter().map(|&(_, p)| p).sum();
    // A genuinely flat spectrum has no dominant line; require the peak to
    // carry a non-trivial share of total power.
    if total <= 0.0 || power / total < 1e-3 {
        None
    } else {
        Some(freq)
    }
}

/// Welch-averaged power spectrum: split the series into Hann-windowed,
/// half-overlapping segments of `segment` samples (a power of two), average
/// their periodograms. Trades frequency resolution for variance reduction —
/// the estimator of choice for noisy FTQ captures where single-shot
/// periodograms (cf. [`power_spectrum`]) are too jittery to threshold.
///
/// Returns `(frequency_hz, mean power)` for bins `1..segment/2`, or an
/// empty vector if the series is shorter than one segment.
///
/// # Panics
///
/// Panics if `segment` is not a power of two or is smaller than 4.
pub fn welch_spectrum(series: &[f64], sample_rate_hz: f64, segment: usize) -> Vec<(f64, f64)> {
    assert!(
        segment.is_power_of_two() && segment >= 4,
        "segment {segment} must be a power of two >= 4"
    );
    if series.len() < segment {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let hop = segment / 2;
    let nseg = (series.len() - segment) / hop + 1;
    let window: Vec<f64> = (0..segment)
        .map(|i| {
            // Hann window.
            let x = std::f64::consts::TAU * i as f64 / segment as f64;
            0.5 * (1.0 - x.cos())
        })
        .collect();
    let mut acc = vec![0.0f64; segment / 2];
    for s in 0..nseg {
        let base = s * hop;
        let mut data: Vec<Complex> = (0..segment)
            .map(|i| Complex::new((series[base + i] - mean) * window[i], 0.0))
            .collect();
        fft(&mut data);
        for (k, a) in acc.iter_mut().enumerate().take(segment / 2).skip(1) {
            *a += data[k].norm_sq();
        }
    }
    let df = sample_rate_hz / segment as f64;
    (1..segment / 2)
        .map(|k| (k as f64 * df, acc[k] / nseg as f64))
        .collect()
}

/// Estimate the *fundamental* frequency of a periodic series.
///
/// A rectangular pulse train spreads power across many harmonics, so the
/// single strongest spectral line may be a multiple of the true repetition
/// rate. This helper finds the peak, then walks its subharmonics
/// (`peak/2`, `peak/3`, ... down to `peak/8`) and returns the lowest one
/// whose spectral bin still carries a substantial share (>= 25%) of the
/// peak's power.
pub fn fundamental_frequency(series: &[f64], sample_rate_hz: f64) -> Option<f64> {
    let spec = power_spectrum(series, sample_rate_hz);
    if spec.is_empty() {
        return None;
    }
    let df = spec[0].0; // bin spacing (bin 1 frequency)
    let (peak_f, peak_p) = spec
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN power"))?;
    let total: f64 = spec.iter().map(|&(_, p)| p).sum();
    if total <= 0.0 || peak_p / total < 1e-3 {
        return None;
    }
    // Power near frequency f (max over the 3 nearest bins, tolerating
    // leakage).
    let power_near = |f: f64| -> f64 {
        let idx = (f / df).round() as isize - 1;
        (-1..=1)
            .filter_map(|d| {
                let i = idx + d;
                if i >= 0 {
                    spec.get(i as usize).map(|&(_, p)| p)
                } else {
                    None
                }
            })
            .fold(0.0, f64::max)
    };
    let mut best = peak_f;
    for k in 2..=8 {
        let cand = peak_f / k as f64;
        if cand < df * 0.75 {
            break;
        }
        if power_near(cand) >= 0.25 * peak_p {
            best = cand;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::zero(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for c in &data {
            assert!((c.norm_sq() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut data = vec![Complex::new(1.0, 0.0); 8];
        fft(&mut data);
        assert!((data[0].re - 8.0).abs() < 1e-12);
        for c in &data[1..] {
            assert!(c.norm_sq() < 1e-20);
        }
    }

    #[test]
    fn fft_parseval() {
        // Energy preserved (times n) for an arbitrary signal.
        let series: Vec<f64> = (0..64).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect();
        let mut data: Vec<Complex> = series.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let time_energy: f64 = series.iter().map(|x| x * x).sum();
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.norm_sq()).sum();
        assert!(
            (freq_energy - 64.0 * time_energy).abs() / (64.0 * time_energy) < 1e-10,
            "{freq_energy} vs {}",
            64.0 * time_energy
        );
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn fft_rejects_odd_lengths() {
        let mut data = vec![Complex::zero(); 6];
        fft(&mut data);
    }

    #[test]
    fn dominant_frequency_of_sine() {
        // 50 Hz sine sampled at 1000 Hz for 1024 samples.
        let sr = 1000.0;
        let series: Vec<f64> = (0..1024)
            .map(|i| (std::f64::consts::TAU * 50.0 * i as f64 / sr).sin())
            .collect();
        let f = dominant_frequency(&series, sr).unwrap();
        assert!((f - 50.0).abs() < 1.5, "detected {f}");
    }

    #[test]
    fn dominant_frequency_of_pulse_train() {
        // 10 Hz rectangular pulse train sampled at 1000 Hz: fundamental 10 Hz.
        let sr = 1000.0;
        let series: Vec<f64> = (0..4096)
            .map(|i| if (i % 100) < 3 { 1.0 } else { 0.0 })
            .collect();
        let f = dominant_frequency(&series, sr).unwrap();
        assert!((f - 10.0).abs() < 0.5, "detected {f}");
    }

    #[test]
    fn flat_series_has_no_dominant_frequency() {
        let series = vec![3.0; 256];
        assert_eq!(dominant_frequency(&series, 1000.0), None);
    }

    #[test]
    fn short_series_yields_empty_spectrum() {
        assert!(power_spectrum(&[1.0, 2.0], 10.0).is_empty());
        assert_eq!(dominant_frequency(&[1.0, 2.0], 10.0), None);
    }

    #[test]
    fn fundamental_recovers_pulse_train_rate() {
        // 100 Hz pulse train, 25% duty per hit quantum, sampled at 1 kHz:
        // the strongest line may be a harmonic, but the fundamental must
        // come back as ~100 Hz.
        let sr = 1000.0;
        let series: Vec<f64> = (0..4096)
            .map(|i| if i % 10 == 0 { 0.25 } else { 0.0 })
            .collect();
        let f = fundamental_frequency(&series, sr).unwrap();
        assert!((f - 100.0).abs() < 2.0, "fundamental {f}");
    }

    #[test]
    fn fundamental_of_pure_sine_is_itself() {
        let sr = 1000.0;
        let series: Vec<f64> = (0..2048)
            .map(|i| (std::f64::consts::TAU * 50.0 * i as f64 / sr).sin())
            .collect();
        let f = fundamental_frequency(&series, sr).unwrap();
        assert!((f - 50.0).abs() < 1.0, "{f}");
    }

    #[test]
    fn fundamental_of_flat_series_is_none() {
        assert_eq!(fundamental_frequency(&vec![1.0; 512], 1000.0), None);
    }

    #[test]
    fn welch_detects_tone_in_heavy_jitter() {
        // A 50 Hz tone buried in deterministic pseudo-noise 4x its
        // amplitude: Welch averaging pulls the line out.
        let sr = 1000.0;
        let mut lcg = 1234u64;
        let series: Vec<f64> = (0..8192)
            .map(|i| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                let noise = ((lcg >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 8.0;
                (std::f64::consts::TAU * 50.0 * i as f64 / sr).sin() + noise
            })
            .collect();
        let spec = welch_spectrum(&series, sr, 512);
        let (peak_f, _) = spec
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((peak_f - 50.0).abs() < 3.0, "peak at {peak_f}");
    }

    #[test]
    fn welch_is_smoother_than_single_periodogram() {
        // For pure noise, the Welch estimate's bin-to-bin relative spread
        // is smaller than the raw periodogram's.
        let sr = 1000.0;
        let mut lcg = 77u64;
        let series: Vec<f64> = (0..8192)
            .map(|_| {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                (lcg >> 33) as f64 / (1u64 << 31) as f64 - 0.5
            })
            .collect();
        let cv = |spec: &[(f64, f64)]| {
            let vals: Vec<f64> = spec.iter().map(|&(_, p)| p).collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
            v.sqrt() / m
        };
        let raw = power_spectrum(&series, sr);
        let welch = welch_spectrum(&series, sr, 256);
        assert!(
            cv(&welch) < 0.5 * cv(&raw),
            "welch cv {} vs raw cv {}",
            cv(&welch),
            cv(&raw)
        );
    }

    #[test]
    fn welch_short_series_is_empty() {
        assert!(welch_spectrum(&[1.0; 100], 1000.0, 256).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn welch_rejects_bad_segment() {
        welch_spectrum(&[0.0; 1000], 1000.0, 100);
    }

    #[test]
    fn spectrum_frequencies_are_ordered_and_bounded() {
        let series: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let spec = power_spectrum(&series, 1000.0);
        assert!(!spec.is_empty());
        for w in spec.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        assert!(spec.last().unwrap().0 < 500.0); // below Nyquist
    }
}

//! Stochastic noise processes.
//!
//! The paper's injected noise is strictly periodic, but real commodity-OS
//! noise has random components: daemons wake on timers with jitter, kernel
//! threads are demand-driven, and interrupt handling is bursty. These models
//! let the harness test how much of the paper's story depends on strict
//! periodicity (answer: little — net intensity and pulse duration dominate).

use ghost_engine::rng::{NodeStream, Xoshiro256};
use ghost_engine::time::{Time, Work};

use crate::intervals::{Interval, IntervalNoise, IntervalSource};
use crate::model::{streams, NodeNoise, NoiseModel};

/// Distribution for pulse durations of stochastic sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationDist {
    /// Every pulse has exactly this length.
    Fixed(Time),
    /// Exponential with this mean length.
    Exponential(Time),
    /// Uniform in `[lo, hi]`.
    Uniform(Time, Time),
}

impl DurationDist {
    /// Mean pulse length in nanoseconds.
    pub fn mean(&self) -> f64 {
        match *self {
            DurationDist::Fixed(d) => d as f64,
            DurationDist::Exponential(m) => m as f64,
            DurationDist::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
        }
    }

    fn sample(&self, rng: &mut Xoshiro256) -> Time {
        match *self {
            DurationDist::Fixed(d) => d,
            DurationDist::Exponential(m) => {
                let x = rng.exp(1.0 / (m as f64).max(1.0));
                x.round() as Time
            }
            DurationDist::Uniform(lo, hi) => {
                debug_assert!(hi >= lo);
                lo + rng.gen_range(hi - lo + 1)
            }
        }
    }
}

/// Poisson-arrival noise: pulses arrive with exponential inter-arrival times
/// at the given mean rate; each pulse's length is drawn from `duration`.
///
/// Matches a demand-driven kernel daemon. The long-run stolen fraction is
/// `rate_hz * mean_duration` (pulse overlap makes the realized fraction
/// slightly lower at high intensities; the FWQ benchmarks measure the
/// realized value).
#[derive(Debug, Clone, Copy)]
pub struct PoissonNoise {
    rate_hz: f64,
    duration: DurationDist,
}

impl PoissonNoise {
    /// Pulses at `rate_hz` mean arrivals per second with the given duration
    /// distribution.
    pub fn new(rate_hz: f64, duration: DurationDist) -> Self {
        assert!(rate_hz > 0.0 && rate_hz.is_finite());
        Self { rate_hz, duration }
    }
}

/// The lazily generated interval stream of one node's Poisson process.
pub struct PoissonSource {
    rng: Xoshiro256,
    rate_per_ns: f64,
    duration: DurationDist,
    next_start: Time,
}

impl PoissonSource {
    /// Build a per-node source from the node's RNG stream.
    pub fn new(rate_hz: f64, duration: DurationDist, mut rng: Xoshiro256) -> Self {
        let rate_per_ns = rate_hz / 1e9;
        let first = rng.exp(rate_per_ns).round() as Time;
        Self {
            rng,
            rate_per_ns,
            duration,
            next_start: first,
        }
    }
}

impl IntervalSource for PoissonSource {
    fn next_interval(&mut self) -> Option<Interval> {
        let start = self.next_start;
        let len = self.duration.sample(&mut self.rng);
        let gap = self.rng.exp(self.rate_per_ns).round() as Time;
        // Next arrival is measured from this arrival (Poisson process on
        // arrivals, not on idle time).
        self.next_start = start.saturating_add(gap.max(1));
        Some(Interval::new(start, start + len))
    }
}

impl NoiseModel for PoissonNoise {
    fn instantiate(&self, node: usize, s: &NodeStream) -> Box<dyn NodeNoise> {
        let rng = s.for_node(node, streams::ARRIVALS);
        Box::new(IntervalNoise::new(PoissonSource::new(
            self.rate_hz,
            self.duration,
            rng,
        )))
    }

    fn net_fraction(&self) -> f64 {
        (self.rate_hz * self.duration.mean() / 1e9).min(1.0)
    }

    fn describe(&self) -> String {
        format!(
            "poisson {:.0} Hz x {:?} ({:.2}% net)",
            self.rate_hz,
            self.duration,
            self.net_fraction() * 100.0
        )
    }
}

/// Bernoulli time-slice noise: time is divided into fixed scheduling quanta;
/// at each quantum boundary the kernel steals the first `slice` nanoseconds
/// with probability `p`.
///
/// Models a general-purpose scheduler that sometimes runs another task at a
/// tick. Net fraction = `p * slice / quantum`.
#[derive(Debug, Clone, Copy)]
pub struct TimesliceNoise {
    quantum: Time,
    slice: Time,
    p: f64,
}

impl TimesliceNoise {
    /// Steal `slice` ns at the start of each `quantum` with probability `p`.
    pub fn new(quantum: Time, slice: Time, p: f64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        assert!(slice <= quantum, "slice {slice} exceeds quantum {quantum}");
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Self { quantum, slice, p }
    }
}

/// Interval stream for one node's time-slice process.
pub struct TimesliceSource {
    rng: Xoshiro256,
    quantum: Time,
    slice: Time,
    p: f64,
    k: u64,
}

impl TimesliceSource {
    /// Build a per-node source from the node's RNG stream.
    pub fn new(cfg: TimesliceNoise, rng: Xoshiro256) -> Self {
        Self {
            rng,
            quantum: cfg.quantum,
            slice: cfg.slice,
            p: cfg.p,
            k: 0,
        }
    }
}

impl IntervalSource for TimesliceSource {
    fn next_interval(&mut self) -> Option<Interval> {
        loop {
            let start = self.k * self.quantum;
            self.k += 1;
            if self.rng.next_f64() < self.p {
                return Some(Interval::new(start, start + self.slice));
            }
            // Guard against infinite spins when p == 0 by bounding the scan;
            // one pulse per ~2^20 quanta is indistinguishable from none.
            if self.p == 0.0 && self.k > 1 << 20 {
                return None;
            }
        }
    }
}

impl NoiseModel for TimesliceNoise {
    fn instantiate(&self, node: usize, s: &NodeStream) -> Box<dyn NodeNoise> {
        let rng = s.for_node(node, streams::ARRIVALS);
        Box::new(IntervalNoise::new(TimesliceSource::new(*self, rng)))
    }

    fn net_fraction(&self) -> f64 {
        self.p * self.slice as f64 / self.quantum as f64
    }

    fn describe(&self) -> String {
        format!(
            "timeslice q={} steal={} p={:.3} ({:.2}% net)",
            ghost_engine::time::format_time(self.quantum),
            ghost_engine::time::format_time(self.slice),
            self.p,
            self.net_fraction() * 100.0
        )
    }
}

/// Measure the realized stolen fraction of any model over a horizon, by
/// instantiating node `node` and sweeping `work_in` (used by tests and the
/// signature-verification table).
pub fn realized_fraction(model: &dyn NoiseModel, node: usize, seed: u64, horizon: Time) -> f64 {
    let s = NodeStream::new(seed);
    let mut n = model.instantiate(node, &s);
    let free: Work = n.work_in(0, horizon);
    1.0 - free as f64 / horizon as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_engine::time::{MS, SEC, US};

    #[test]
    fn duration_dist_means() {
        assert_eq!(DurationDist::Fixed(100).mean(), 100.0);
        assert_eq!(DurationDist::Exponential(250).mean(), 250.0);
        assert_eq!(DurationDist::Uniform(100, 300).mean(), 200.0);
    }

    #[test]
    fn duration_dist_samples_in_support() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(DurationDist::Fixed(42).sample(&mut rng), 42);
            let u = DurationDist::Uniform(10, 20).sample(&mut rng);
            assert!((10..=20).contains(&u), "{u}");
        }
    }

    #[test]
    fn exponential_duration_mean_close() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let d = DurationDist::Exponential(1000);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn poisson_realized_fraction_near_nominal() {
        // 100 Hz x 250us = 2.5% nominal.
        let m = PoissonNoise::new(100.0, DurationDist::Fixed(250 * US));
        let f = realized_fraction(&m, 0, 42, 100 * SEC);
        assert!(
            (f - 0.025).abs() < 0.004,
            "realized {f} vs nominal {}",
            m.net_fraction()
        );
    }

    #[test]
    fn poisson_nodes_decorrelated() {
        let m = PoissonNoise::new(10.0, DurationDist::Fixed(2500 * US));
        let s = NodeStream::new(3);
        let mut a = m.instantiate(0, &s);
        let mut b = m.instantiate(1, &s);
        // First free instants after a dense probing grid should differ.
        let fa: Vec<Time> = (0..50).map(|i| a.next_free(i * 10 * MS)).collect();
        let fb: Vec<Time> = (0..50).map(|i| b.next_free(i * 10 * MS)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn poisson_is_reproducible() {
        let m = PoissonNoise::new(100.0, DurationDist::Exponential(250 * US));
        let f1 = realized_fraction(&m, 7, 99, 10 * SEC);
        let f2 = realized_fraction(&m, 7, 99, 10 * SEC);
        assert_eq!(f1, f2);
    }

    #[test]
    fn timeslice_fraction_matches() {
        // 1ms quanta, steal 100us with p=0.25 -> 2.5% net.
        let m = TimesliceNoise::new(MS, 100 * US, 0.25);
        assert!((m.net_fraction() - 0.025).abs() < 1e-12);
        let f = realized_fraction(&m, 0, 11, 50 * SEC);
        assert!((f - 0.025).abs() < 0.003, "realized {f}");
    }

    #[test]
    fn timeslice_p_one_steals_every_quantum() {
        let m = TimesliceNoise::new(MS, 100 * US, 1.0);
        let s = NodeStream::new(1);
        let mut n = m.instantiate(0, &s);
        // Noise at [0,100us), [1ms, 1.1ms), ...
        assert_eq!(n.next_free(0), 100 * US);
        // 900us of work fits exactly in the free region [100us, 1ms).
        assert_eq!(n.advance(100 * US, 900 * US), MS);
        // One more ns of work must cross the second quantum's stolen slice.
        assert_eq!(n.advance(MS, 1), MS + 100 * US + 1);
    }

    #[test]
    fn timeslice_p_zero_is_noiseless() {
        let m = TimesliceNoise::new(MS, 100 * US, 0.0);
        let f = realized_fraction(&m, 0, 1, SEC);
        assert_eq!(f, 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds quantum")]
    fn timeslice_slice_too_long_panics() {
        TimesliceNoise::new(MS, 2 * MS, 0.5);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn timeslice_bad_probability_panics() {
        TimesliceNoise::new(MS, 100, 1.5);
    }

    #[test]
    fn describe_strings() {
        let p = PoissonNoise::new(100.0, DurationDist::Fixed(250 * US));
        assert!(p.describe().contains("poisson"));
        let t = TimesliceNoise::new(MS, 100 * US, 0.25);
        assert!(t.describe().contains("timeslice"));
    }
}

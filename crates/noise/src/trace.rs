//! Trace-replay noise.
//!
//! The SC'07 study motivates injection by first *measuring* the noise of
//! real kernels with FTQ/FWQ. [`TraceNoise`] closes that loop in GhostSim:
//! a recorded list of stolen intervals (e.g. captured from an FTQ run on a
//! real machine, or produced by one of the synthetic models) can be replayed
//! onto the simulated machine, either once or tiled periodically.

use ghost_engine::rng::NodeStream;
use ghost_engine::time::{Time, Work};

use crate::intervals::{Interval, IntervalNoise, IntervalSource};
use crate::model::{NodeNoise, NoiseModel};

/// A recorded noise trace: stolen intervals within `[0, span)`.
#[derive(Debug, Clone)]
pub struct Trace {
    intervals: Vec<Interval>,
    span: Time,
}

impl Trace {
    /// Build a trace from intervals and the capture window length.
    ///
    /// Intervals are sorted, clipped to `[0, span)`, and overlaps merged, so
    /// downstream consumers see a canonical form.
    pub fn new(mut intervals: Vec<Interval>, span: Time) -> Self {
        assert!(span > 0, "trace span must be positive");
        intervals.retain(|iv| iv.start < span && !iv.is_empty());
        for iv in &mut intervals {
            iv.end = iv.end.min(span);
        }
        intervals.sort_by_key(|iv| iv.start);
        // Merge overlaps.
        let mut merged: Vec<Interval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.last_mut() {
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => merged.push(iv),
            }
        }
        Self {
            intervals: merged,
            span,
        }
    }

    /// Parse a trace from `start_ns end_ns` text lines (`#` comments and
    /// blank lines ignored). `span` is the capture window.
    pub fn parse(text: &str, span: Time) -> Result<Self, String> {
        let mut ivs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let s: Time = parts
                .next()
                .ok_or_else(|| format!("line {}: missing start", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad start: {e}", lineno + 1))?;
            let e: Time = parts
                .next()
                .ok_or_else(|| format!("line {}: missing end", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad end: {e}", lineno + 1))?;
            if e < s {
                return Err(format!("line {}: inverted interval {s}..{e}", lineno + 1));
            }
            ivs.push(Interval::new(s, e));
        }
        Ok(Self::new(ivs, span))
    }

    /// The recorded intervals (canonical: sorted, merged, clipped).
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Capture window length.
    pub fn span(&self) -> Time {
        self.span
    }

    /// Total stolen time within the capture window.
    pub fn total_noise(&self) -> Time {
        self.intervals.iter().map(|iv| iv.len()).sum()
    }

    /// Stolen fraction of the capture window.
    pub fn fraction(&self) -> f64 {
        self.total_noise() as f64 / self.span as f64
    }
}

/// Replay policy for a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replay {
    /// Play the trace once; after `span`, the node is noiseless.
    Once,
    /// Tile the trace end-to-end forever.
    Loop,
}

/// Noise model replaying a [`Trace`] on every node.
///
/// Each node can replay at a rotated offset (node i starts reading the trace
/// at position `i * stride` within the span) so nodes are decorrelated
/// without requiring per-node traces.
#[derive(Debug, Clone)]
pub struct TraceNoise {
    trace: std::sync::Arc<Trace>,
    replay: Replay,
    rotate: bool,
}

impl TraceNoise {
    /// Replay `trace` with the given policy; `rotate` decorrelates nodes by
    /// rotating each node's start position within the trace.
    pub fn new(trace: Trace, replay: Replay, rotate: bool) -> Self {
        Self {
            trace: std::sync::Arc::new(trace),
            replay,
            rotate,
        }
    }
}

/// Interval stream reading a shared trace with offset + optional looping.
pub struct TraceSource {
    trace: std::sync::Arc<Trace>,
    replay: Replay,
    /// Rotation offset within the span.
    offset: Time,
    /// Current tile index (0 for Once).
    tile: u64,
    /// Next interval index within the current tile.
    idx: usize,
}

impl TraceSource {
    /// Create a source reading `trace` starting `offset` ns into the span.
    ///
    /// Replay time `r` maps to trace position `(r + offset) mod span`; with
    /// `Replay::Once` and a nonzero offset, the portion of the capture
    /// window before the offset is not played (a single rotated pass).
    pub fn new(trace: std::sync::Arc<Trace>, replay: Replay, offset: Time) -> Self {
        let offset = offset % trace.span;
        Self {
            trace,
            replay,
            offset,
            tile: 0,
            idx: 0,
        }
    }
}

impl IntervalSource for TraceSource {
    fn next_interval(&mut self) -> Option<Interval> {
        if self.trace.intervals.is_empty() {
            return None;
        }
        loop {
            if self.idx < self.trace.intervals.len() {
                let iv = self.trace.intervals[self.idx];
                self.idx += 1;
                // Position on the unrolled (tiled) trace timeline.
                let base = self.tile * self.trace.span;
                let u_start = base + iv.start;
                let u_end = base + iv.end;
                if u_end <= self.offset {
                    continue; // entirely before the rotation origin
                }
                let start = u_start.max(self.offset) - self.offset;
                let end = u_end - self.offset;
                return Some(Interval::new(start, end));
            }
            match self.replay {
                Replay::Once => return None,
                Replay::Loop => {
                    self.tile += 1;
                    self.idx = 0;
                }
            }
        }
    }
}

impl NoiseModel for TraceNoise {
    fn instantiate(&self, node: usize, streams: &NodeStream) -> Box<dyn NodeNoise> {
        let offset = if self.rotate {
            let mut rng = streams.for_node(node, crate::model::streams::PHASE);
            rng.gen_range(self.trace.span)
        } else {
            0
        };
        Box::new(IntervalNoise::new(TraceSource::new(
            self.trace.clone(),
            self.replay,
            offset,
        )))
    }

    fn net_fraction(&self) -> f64 {
        match self.replay {
            Replay::Loop => self.trace.fraction(),
            Replay::Once => self.trace.fraction(), // over the capture window
        }
    }

    fn describe(&self) -> String {
        format!(
            "trace replay ({} intervals over {}, {:.2}% net, {:?})",
            self.trace.intervals.len(),
            ghost_engine::time::format_time(self.trace.span),
            self.trace.fraction() * 100.0,
            self.replay
        )
    }
}

/// Record a node's noise as a [`Trace`] by probing a model over a window
/// with the given probe resolution (used to round-trip synthetic models
/// through the trace machinery, and as the paper does when characterizing a
/// kernel before injection).
pub fn record(model: &dyn NoiseModel, node: usize, seed: u64, span: Time, probe: Time) -> Trace {
    assert!(probe > 0);
    let s = NodeStream::new(seed);
    let mut n = model.instantiate(node, &s);
    let mut intervals = Vec::new();
    let mut cur: Option<Interval> = None;
    let mut t = 0;
    while t < span {
        let t1 = (t + probe).min(span);
        let free: Work = n.work_in(t, t1);
        let stolen = (t1 - t) - free;
        if stolen > 0 {
            // Attribute stolen time to this probe cell (resolution-limited).
            match &mut cur {
                Some(iv) if iv.end == t => iv.end = t1,
                _ => {
                    if let Some(iv) = cur.take() {
                        intervals.push(iv);
                    }
                    cur = Some(Interval::new(t, t1));
                }
            }
        } else if let Some(iv) = cur.take() {
            intervals.push(iv);
        }
        t = t1;
    }
    if let Some(iv) = cur.take() {
        intervals.push(iv);
    }
    Trace::new(intervals, span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PhasePolicy;
    use crate::periodic::PeriodicModel;
    use ghost_engine::time::{MS, SEC, US};

    fn iv(s: Time, e: Time) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn trace_canonicalizes() {
        let t = Trace::new(vec![iv(50, 60), iv(10, 20), iv(15, 30), iv(90, 200)], 100);
        assert_eq!(t.intervals(), &[iv(10, 30), iv(50, 60), iv(90, 100)]);
        assert_eq!(t.total_noise(), 40);
        assert!((t.fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn trace_parse_roundtrip() {
        let text = "# kernel noise capture\n10 20\n\n50 60\n";
        let t = Trace::parse(text, 100).unwrap();
        assert_eq!(t.intervals(), &[iv(10, 20), iv(50, 60)]);
    }

    #[test]
    fn trace_parse_rejects_garbage() {
        assert!(Trace::parse("abc def", 100).is_err());
        assert!(Trace::parse("10", 100).is_err());
        assert!(Trace::parse("20 10", 100).is_err());
    }

    #[test]
    fn replay_once_stops_after_span() {
        let trace = Trace::new(vec![iv(10, 20)], 100);
        let m = TraceNoise::new(trace, Replay::Once, false);
        let s = NodeStream::new(1);
        let mut n = m.instantiate(0, &s);
        assert_eq!(n.advance(0, 15), 25); // skips [10,20)
        assert_eq!(n.advance(200, 1000), 1200); // past the trace: noiseless
    }

    #[test]
    fn replay_loop_tiles() {
        let trace = Trace::new(vec![iv(10, 20)], 100);
        let m = TraceNoise::new(trace, Replay::Loop, false);
        let s = NodeStream::new(1);
        let mut n = m.instantiate(0, &s);
        // Tiles: noise at [10,20), [110,120), [210,220) ...
        assert_eq!(n.next_free(115), 120);
        assert_eq!(n.next_free(215), 220);
    }

    #[test]
    fn rotation_decorrelates_nodes() {
        let trace = Trace::new(vec![iv(0, 10 * MS)], 100 * MS);
        let m = TraceNoise::new(trace, Replay::Loop, true);
        let s = NodeStream::new(5);
        let mut a = m.instantiate(0, &s);
        let mut b = m.instantiate(1, &s);
        // Dense probing: the rotated pulse positions differ across nodes.
        let fa: Vec<Time> = (0..200).map(|i| a.next_free(i * MS)).collect();
        let fb: Vec<Time> = (0..200).map(|i| b.next_free(i * MS)).collect();
        assert_ne!(fa, fb, "rotated replicas should differ across nodes");
    }

    #[test]
    fn record_recovers_periodic_fraction() {
        let m = PeriodicModel::new(10 * MS, 250 * US, PhasePolicy::Aligned);
        let tr = record(&m, 0, 1, SEC, 50 * US);
        // Resolution-limited: fraction within a probe cell of the truth.
        assert!(
            (tr.fraction() - 0.025).abs() < 0.005,
            "recorded fraction {}",
            tr.fraction()
        );
        // Roughly 100 pulses in 1s at 100 Hz.
        let n = tr.intervals().len();
        assert!((90..=110).contains(&n), "{n} pulses recorded");
    }

    #[test]
    fn recorded_trace_replays_equivalently() {
        let m = PeriodicModel::new(MS, 100 * US, PhasePolicy::Aligned);
        let tr = record(&m, 0, 1, 10 * MS, 10 * US);
        let replay = TraceNoise::new(tr, Replay::Loop, false);
        let s = NodeStream::new(1);
        let mut orig = m.instantiate(0, &s);
        let mut rep = replay.instantiate(0, &s);
        for i in 0..20u64 {
            let t = i * 700 * US;
            let a = orig.next_free(t);
            let b = rep.next_free(t);
            // Within probe resolution.
            assert!(a.abs_diff(b) <= 10 * US, "t={t}: orig {a} vs replay {b}");
        }
    }

    #[test]
    fn describe_mentions_trace() {
        let m = TraceNoise::new(Trace::new(vec![iv(0, 10)], 100), Replay::Loop, false);
        assert!(m.describe().contains("trace replay"));
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn zero_span_panics() {
        Trace::new(vec![], 0);
    }
}

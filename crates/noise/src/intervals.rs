//! Interval-stream noise: a generic adapter from "a stream of stolen CPU
//! intervals" to the [`NodeNoise`] trait.
//!
//! Periodic noise has a closed form, but stochastic processes (Poisson
//! arrivals, Bernoulli time slices), trace replay, and compositions of
//! several sources are most naturally expressed as a lazily generated,
//! time-ordered stream of `[start, end)` intervals. [`IntervalNoise`] sweeps
//! such a stream with a forward-only cursor, which is sufficient because the
//! executor queries each node monotonically in time.

use ghost_engine::time::{Time, Work};

use crate::model::NodeNoise;

/// A stolen-CPU interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First stolen nanosecond.
    pub start: Time,
    /// One past the last stolen nanosecond.
    pub end: Time,
}

impl Interval {
    /// Construct an interval; panics in debug builds if inverted.
    #[inline]
    pub fn new(start: Time, end: Time) -> Self {
        debug_assert!(end >= start, "inverted interval {start}..{end}");
        Self { start, end }
    }

    /// Interval length in nanoseconds.
    #[inline]
    pub fn len(&self) -> Time {
        self.end - self.start
    }

    /// Whether the interval is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// An infinite (or effectively infinite) generator of noise intervals.
///
/// Implementations must yield intervals with non-decreasing `start`;
/// overlaps between successive intervals are tolerated (the consumer
/// merges), which simplifies stochastic sources whose pulses can collide.
pub trait IntervalSource: Send {
    /// Produce the next interval, or `None` if the source is exhausted
    /// (finite traces).
    fn next_interval(&mut self) -> Option<Interval>;
}

/// Blanket adapter: any boxed source is a source.
impl IntervalSource for Box<dyn IntervalSource> {
    fn next_interval(&mut self) -> Option<Interval> {
        (**self).next_interval()
    }
}

/// [`NodeNoise`] implementation over any [`IntervalSource`].
///
/// Maintains the current not-yet-passed interval and merges overlapping
/// pulses on the fly.
pub struct IntervalNoise<S> {
    source: S,
    /// Next noise interval whose `end` is beyond the cursor, if any.
    cur: Option<Interval>,
    /// Last query time, to enforce (in debug builds) the monotonicity
    /// contract.
    watermark: Time,
    exhausted: bool,
}

impl<S: IntervalSource> IntervalNoise<S> {
    /// Wrap an interval source.
    pub fn new(source: S) -> Self {
        Self {
            source,
            cur: None,
            watermark: 0,
            exhausted: false,
        }
    }

    /// Pull intervals until `cur` ends after `t` (merging overlaps), or the
    /// source is exhausted.
    fn refill(&mut self, t: Time) {
        loop {
            match self.cur {
                Some(iv) if iv.end > t => {
                    // Merge any pulses that begin before `iv` ends.
                    // We peek by pulling; an interval that starts after the
                    // current end becomes the new pending head only after
                    // `cur` is consumed, so we only merge true overlaps here.
                    break;
                }
                _ => {
                    if self.exhausted {
                        self.cur = None;
                        break;
                    }
                    match self.source.next_interval() {
                        Some(mut next) => {
                            // Merge chains of overlapping pulses into one.
                            if let Some(prev) = self.cur {
                                if next.start < prev.end {
                                    next = Interval::new(
                                        prev.start.min(next.start),
                                        prev.end.max(next.end),
                                    );
                                }
                            }
                            self.cur = Some(next);
                        }
                        None => {
                            self.exhausted = true;
                            self.cur = None;
                            break;
                        }
                    }
                }
            }
        }
    }

    fn note_query(&mut self, t: Time) {
        debug_assert!(
            t >= self.watermark,
            "non-monotone noise query: {t} < {}",
            self.watermark
        );
        self.watermark = t;
    }
}

impl<S: IntervalSource> NodeNoise for IntervalNoise<S> {
    fn advance(&mut self, t: Time, work: Work) -> Time {
        self.note_query(t);
        let mut now = t;
        let mut left = work;
        loop {
            self.refill(now);
            match self.cur {
                None => return now + left, // no more noise ever
                Some(iv) => {
                    if now >= iv.start {
                        // Inside (or at the start of) a pulse: skip it.
                        now = iv.end;
                        continue;
                    }
                    let gap = iv.start - now;
                    if left <= gap {
                        return now + left;
                    }
                    left -= gap;
                    now = iv.end;
                }
            }
        }
    }

    fn work_in(&mut self, t0: Time, t1: Time) -> Work {
        self.note_query(t0);
        debug_assert!(t1 >= t0);
        let mut free = 0;
        let mut now = t0;
        while now < t1 {
            self.refill(now);
            match self.cur {
                None => {
                    free += t1 - now;
                    break;
                }
                Some(iv) => {
                    if now < iv.start {
                        free += iv.start.min(t1) - now;
                    }
                    if iv.end >= t1 {
                        break;
                    }
                    now = iv.end;
                }
            }
        }
        self.watermark = self.watermark.max(t1);
        free
    }
}

/// A source over an explicit, pre-sorted list of intervals (used by trace
/// replay and tests).
#[derive(Debug, Clone)]
pub struct VecSource {
    intervals: std::vec::IntoIter<Interval>,
}

impl VecSource {
    /// Build from a list of intervals, sorting by start.
    pub fn new(mut intervals: Vec<Interval>) -> Self {
        intervals.sort_by_key(|iv| iv.start);
        Self {
            intervals: intervals.into_iter(),
        }
    }
}

impl IntervalSource for VecSource {
    fn next_interval(&mut self) -> Option<Interval> {
        self.intervals.next()
    }
}

/// Merge several interval sources into one time-ordered stream.
///
/// Pulls lazily: keeps one pending interval per upstream source and yields
/// the earliest-starting one. Overlap *across* sources is resolved by the
/// consumer ([`IntervalNoise`] merges overlapping successive intervals).
pub struct MergeSource<S> {
    sources: Vec<S>,
    pending: Vec<Option<Interval>>,
}

impl<S: IntervalSource> MergeSource<S> {
    /// Merge the given sources.
    pub fn new(mut sources: Vec<S>) -> Self {
        let pending = sources.iter_mut().map(|s| s.next_interval()).collect();
        Self { sources, pending }
    }
}

impl<S: IntervalSource> IntervalSource for MergeSource<S> {
    fn next_interval(&mut self) -> Option<Interval> {
        let mut best: Option<(usize, Interval)> = None;
        for (i, p) in self.pending.iter().enumerate() {
            if let Some(iv) = p {
                match best {
                    Some((_, b)) if b.start <= iv.start => {}
                    _ => best = Some((i, *iv)),
                }
            }
        }
        let (i, iv) = best?;
        self.pending[i] = self.sources[i].next_interval();
        Some(iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(ivs: &[(Time, Time)]) -> IntervalNoise<VecSource> {
        IntervalNoise::new(VecSource::new(
            ivs.iter().map(|&(s, e)| Interval::new(s, e)).collect(),
        ))
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(5, 9);
        assert_eq!(iv.len(), 4);
        assert!(!iv.is_empty());
        assert!(Interval::new(3, 3).is_empty());
    }

    #[test]
    fn advance_with_no_intervals() {
        let mut n = noise(&[]);
        assert_eq!(n.advance(10, 100), 110);
    }

    #[test]
    fn advance_skips_intervals() {
        let mut n = noise(&[(10, 20), (50, 60)]);
        // 30 units of work from 0: free [0,10)=10, skip to 20, free
        // [20,50)=30 -> 10+20=30 done at 40.
        assert_eq!(n.advance(0, 30), 40);
    }

    #[test]
    fn advance_starting_inside_interval() {
        let mut n = noise(&[(10, 20)]);
        assert_eq!(n.advance(15, 5), 25);
    }

    #[test]
    fn advance_exactly_filling_gap_ends_at_pulse_start() {
        let mut n = noise(&[(10, 20)]);
        assert_eq!(n.advance(0, 10), 10);
    }

    #[test]
    fn zero_work_returns_next_free() {
        let mut n = noise(&[(10, 20)]);
        assert_eq!(n.next_free(12), 20);
        let mut n = noise(&[(10, 20)]);
        assert_eq!(n.next_free(5), 5);
    }

    #[test]
    fn overlapping_pulses_merge() {
        let mut n = noise(&[(10, 30), (20, 40), (35, 50)]);
        // Effective noise [10, 50).
        assert_eq!(n.advance(0, 15), 55);
    }

    #[test]
    fn adjacent_pulses_do_not_merge_but_behave_identically() {
        let mut n = noise(&[(10, 20), (20, 30)]);
        assert_eq!(n.advance(0, 11), 31);
    }

    #[test]
    fn work_in_accounts_noise() {
        let mut n = noise(&[(10, 20), (50, 60)]);
        assert_eq!(n.work_in(0, 100), 80);
        let mut n = noise(&[(10, 20), (50, 60)]);
        assert_eq!(n.work_in(0, 15), 10);
        let mut n = noise(&[(10, 20), (50, 60)]);
        assert_eq!(n.work_in(12, 18), 0);
    }

    #[test]
    fn work_in_window_entirely_after_noise() {
        let mut n = noise(&[(10, 20)]);
        assert_eq!(n.work_in(30, 40), 10);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-monotone")]
    fn non_monotone_queries_panic_in_debug() {
        let mut n = noise(&[(10, 20)]);
        n.advance(100, 1);
        n.advance(50, 1);
    }

    #[test]
    fn merge_source_interleaves() {
        let a = VecSource::new(vec![Interval::new(0, 1), Interval::new(10, 11)]);
        let b = VecSource::new(vec![Interval::new(5, 6), Interval::new(20, 21)]);
        let mut m = MergeSource::new(vec![a, b]);
        let starts: Vec<Time> = std::iter::from_fn(|| m.next_interval())
            .map(|iv| iv.start)
            .collect();
        assert_eq!(starts, vec![0, 5, 10, 20]);
    }

    #[test]
    fn merge_source_empty_inputs() {
        let mut m = MergeSource::new(vec![VecSource::new(vec![]), VecSource::new(vec![])]);
        assert_eq!(m.next_interval(), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force reference: noise as a sorted, merged interval list;
        /// advance by walking gaps.
        fn reference_advance(ivs: &[(Time, Time)], t: Time, work: Time) -> Time {
            // Merge.
            let mut sorted: Vec<(Time, Time)> = ivs.to_vec();
            sorted.sort_unstable();
            let mut merged: Vec<(Time, Time)> = Vec::new();
            for (s, e) in sorted {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            let mut now = t;
            let mut left = work;
            for (s, e) in merged {
                if e <= now {
                    continue;
                }
                if now >= s {
                    now = e;
                    continue;
                }
                let gap = s - now;
                if left <= gap {
                    return now + left;
                }
                left -= gap;
                now = e;
            }
            now + left
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn advance_matches_reference(
                raw in proptest::collection::vec((0u64..10_000, 0u64..500), 0..20),
                queries in proptest::collection::vec((0u64..2_000, 0u64..2_000), 1..10),
            ) {
                let ivs: Vec<(Time, Time)> =
                    raw.iter().map(|&(s, l)| (s, s + l)).collect();
                let mut n = IntervalNoise::new(VecSource::new(
                    ivs.iter().map(|&(s, e)| Interval::new(s, e)).collect(),
                ));
                // Monotone query stream.
                let mut t = 0;
                for &(dt, work) in &queries {
                    t += dt;
                    let got = n.advance(t, work);
                    let expect = reference_advance(&ivs, t, work);
                    prop_assert_eq!(got, expect, "t={} work={}", t, work);
                    t = got; // keep the cursor monotone
                }
            }

            #[test]
            fn work_in_complements_noise(
                raw in proptest::collection::vec((0u64..5_000, 1u64..300), 0..15),
                cut in 0u64..8_000,
            ) {
                let ivs: Vec<Interval> = raw
                    .iter()
                    .map(|&(s, l)| Interval::new(s, s + l))
                    .collect();
                let mut n = IntervalNoise::new(VecSource::new(ivs.clone()));
                let free = n.work_in(0, cut);
                // Reference: total minus merged overlap with [0, cut).
                let mut sorted: Vec<(Time, Time)> =
                    raw.iter().map(|&(s, l)| (s, s + l)).collect();
                sorted.sort_unstable();
                let mut merged: Vec<(Time, Time)> = Vec::new();
                for (s, e) in sorted {
                    match merged.last_mut() {
                        Some(last) if s <= last.1 => last.1 = last.1.max(e),
                        _ => merged.push((s, e)),
                    }
                }
                let noise: Time = merged
                    .iter()
                    .map(|&(s, e)| e.min(cut).saturating_sub(s))
                    .sum();
                prop_assert_eq!(free, cut - noise);
            }
        }
    }

    #[test]
    fn vec_source_sorts_input() {
        let mut s = VecSource::new(vec![Interval::new(30, 31), Interval::new(10, 11)]);
        assert_eq!(s.next_interval().unwrap().start, 10);
        assert_eq!(s.next_interval().unwrap().start, 30);
    }
}

//! The noise abstraction: per-node processes and experiment-level models.

use ghost_engine::rng::NodeStream;
use ghost_engine::time::{Time, Work};

/// A per-node noise process.
///
/// The simulator executes each node's CPU as a strictly sequential timeline,
/// so implementations may keep a forward-moving cursor: **all calls on one
/// instance must use non-decreasing `t`** (the executor guarantees this).
///
/// Semantics: the noise process steals the CPU during its "noise intervals".
/// Application work only progresses outside them.
pub trait NodeNoise: Send {
    /// Completion time of `work` nanoseconds of CPU started at (or after)
    /// `t`. If `t` falls inside a noise interval, work begins when the
    /// interval ends. Always `>= t + work`.
    fn advance(&mut self, t: Time, work: Work) -> Time;

    /// Earliest instant `>= t` at which the CPU is free of noise.
    ///
    /// Equivalent to `advance(t, 0)`, provided for readability at call
    /// sites that model message-processing start times.
    fn next_free(&mut self, t: Time) -> Time {
        self.advance(t, 0)
    }

    /// Useful CPU work available in the window `[t0, t1)`, i.e. the window
    /// length minus noise overlap. Must be called with monotone windows.
    fn work_in(&mut self, t0: Time, t1: Time) -> Work;

    /// Whether this process provably never steals the CPU, i.e. `advance`
    /// is exactly `t + work` forever. The executor caches this once per
    /// rank and skips the virtual `advance` call on the hot path — at paper
    /// scale (8k+ ranks) the per-event pointer chase into a boxed noise
    /// process is measurable. Conservative default: `false` (wrappers that
    /// *might* inject time, e.g. one-off delays, must not override this).
    fn is_free(&self) -> bool {
        false
    }
}

/// An experiment-level noise configuration: instantiates one [`NodeNoise`]
/// per node, with per-node phase/randomness drawn from the experiment's
/// [`NodeStream`].
pub trait NoiseModel: Send + Sync {
    /// Build the process for `node`.
    fn instantiate(&self, node: usize, streams: &NodeStream) -> Box<dyn NodeNoise>;

    /// Long-run fraction of CPU stolen (0.0 for the noiseless baseline).
    fn net_fraction(&self) -> f64;

    /// Human-readable description for reports.
    fn describe(&self) -> String;
}

/// How per-node noise phases relate across the machine.
///
/// The paper's injected noise is *uncoordinated*: each node's kernel ticks
/// independently, so phases are effectively random. Gang-scheduling research
/// (which the paper's discussion touches) aligns phases so all nodes lose
/// the same instants — that case is reproduced by [`PhasePolicy::Aligned`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhasePolicy {
    /// Every node uses phase 0: noise hits all nodes simultaneously
    /// (co-scheduled kernel activity).
    Aligned,
    /// Each node draws a uniform phase in `[0, period)` — independent kernel
    /// timers, the paper's configuration.
    Random,
    /// Node `i` of `n` uses phase `i * period / n` (worst-case staggering:
    /// some node is always in noise).
    Staggered {
        /// Total number of nodes used to compute the stagger stride.
        nodes: usize,
    },
    /// Every node uses the given fixed phase in nanoseconds.
    Fixed(Time),
}

impl PhasePolicy {
    /// Resolve the phase for `node` under a process with the given `period`.
    ///
    /// `Random` consumes one draw from the node's phase stream (stream tag
    /// [`streams::PHASE`]).
    pub fn phase_for(&self, node: usize, period: Time, streams: &NodeStream) -> Time {
        if period == 0 {
            return 0;
        }
        match *self {
            PhasePolicy::Aligned => 0,
            PhasePolicy::Random => streams.for_node(node, streams::PHASE).gen_range(period),
            PhasePolicy::Staggered { nodes } => {
                let n = nodes.max(1) as u128;
                ((node as u128 % n) * period as u128 / n) as Time
            }
            PhasePolicy::Fixed(phi) => phi % period,
        }
    }
}

/// Well-known per-node RNG stream tags, so independent consumers on the same
/// node never share a sequence.
pub mod streams {
    /// Phase draws for periodic noise.
    pub const PHASE: u64 = 0x01;
    /// Stochastic noise arrival processes.
    pub const ARRIVALS: u64 = 0x02;
    /// Application load-imbalance draws.
    pub const IMBALANCE: u64 = 0x03;
    /// Fault-injection draws (message drop/duplication); see
    /// [`crate::fault`]. A dedicated stream guarantees that enabling a
    /// fault plan never perturbs the phase/arrival/imbalance sequences.
    pub const FAULTS: u64 = 0x04;
}

/// The noiseless baseline: a lightweight kernel that never steals the CPU
/// (Catamount on Red Storm, in the paper's setup).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNoise;

impl NodeNoise for NoNoise {
    #[inline]
    fn advance(&mut self, t: Time, work: Work) -> Time {
        t + work
    }

    #[inline]
    fn work_in(&mut self, t0: Time, t1: Time) -> Work {
        debug_assert!(t1 >= t0);
        t1 - t0
    }

    #[inline]
    fn is_free(&self) -> bool {
        true
    }
}

impl NoiseModel for NoNoise {
    fn instantiate(&self, _node: usize, _streams: &NodeStream) -> Box<dyn NodeNoise> {
        Box::new(NoNoise)
    }

    fn net_fraction(&self) -> f64 {
        0.0
    }

    fn describe(&self) -> String {
        "noiseless (lightweight kernel)".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_engine::time::{MS, US};

    #[test]
    fn no_noise_is_identity() {
        let mut n = NoNoise;
        assert_eq!(n.advance(0, MS), MS);
        assert_eq!(n.advance(MS, 5 * US), MS + 5 * US);
        assert_eq!(n.next_free(123), 123);
        assert_eq!(n.work_in(10, 100), 90);
    }

    #[test]
    fn no_noise_model_properties() {
        let m = NoNoise;
        assert_eq!(m.net_fraction(), 0.0);
        assert!(m.describe().contains("noiseless"));
        let streams = NodeStream::new(1);
        let mut inst = m.instantiate(3, &streams);
        assert_eq!(inst.advance(0, 77), 77);
    }

    #[test]
    fn aligned_phase_is_zero() {
        let s = NodeStream::new(9);
        for node in 0..8 {
            assert_eq!(PhasePolicy::Aligned.phase_for(node, MS, &s), 0);
        }
    }

    #[test]
    fn random_phase_in_range_and_reproducible() {
        let s = NodeStream::new(9);
        let p = 100 * MS;
        for node in 0..64 {
            let a = PhasePolicy::Random.phase_for(node, p, &s);
            let b = PhasePolicy::Random.phase_for(node, p, &s);
            assert!(a < p);
            assert_eq!(a, b, "phase must be a pure function of (seed, node)");
        }
    }

    #[test]
    fn random_phases_vary_across_nodes() {
        let s = NodeStream::new(9);
        let p = 100 * MS;
        let phases: Vec<Time> = (0..32)
            .map(|n| PhasePolicy::Random.phase_for(n, p, &s))
            .collect();
        let distinct = {
            let mut v = phases.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(
            distinct > 28,
            "phases suspiciously clustered: {distinct}/32"
        );
    }

    #[test]
    fn staggered_phases_cover_period_evenly() {
        let s = NodeStream::new(1);
        let p = 1000;
        let pol = PhasePolicy::Staggered { nodes: 4 };
        let phases: Vec<Time> = (0..4).map(|n| pol.phase_for(n, p, &s)).collect();
        assert_eq!(phases, vec![0, 250, 500, 750]);
        // wraps for node >= nodes
        assert_eq!(pol.phase_for(5, p, &s), 250);
    }

    #[test]
    fn fixed_phase_wraps_modulo_period() {
        let s = NodeStream::new(1);
        assert_eq!(PhasePolicy::Fixed(1234).phase_for(0, 1000, &s), 234);
    }

    #[test]
    fn zero_period_yields_zero_phase() {
        let s = NodeStream::new(1);
        assert_eq!(PhasePolicy::Random.phase_for(7, 0, &s), 0);
    }
}

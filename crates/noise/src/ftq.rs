//! FTQ and FWQ: the noise microbenchmarks.
//!
//! The paper verifies its injected noise with the standard OS-noise
//! measurement pair:
//!
//! * **FWQ (Fixed Work Quanta)** — repeatedly execute a fixed amount of work
//!   and record how long each repetition took. Repetitions hit by noise take
//!   longer; the per-sample *overhead* distribution characterizes the noise.
//! * **FTQ (Fixed Time Quanta)** — divide time into fixed quanta and record
//!   how much work completed in each. Quanta hit by noise complete less
//!   work; the sample series' power spectrum reveals noise periodicity.
//!
//! In GhostSim the benchmarks run against a node's simulated noise process,
//! which is exactly how they behave on real hardware (they observe whatever
//! steals the CPU).

use ghost_engine::rng::NodeStream;
use ghost_engine::time::{Time, Work};

use crate::model::{NodeNoise, NoiseModel};
use crate::stats::Summary;

/// Result of an FWQ run: per-repetition elapsed times for a fixed work
/// quantum.
#[derive(Debug, Clone)]
pub struct FwqRun {
    /// The fixed work per repetition, in ns of CPU.
    pub work: Work,
    /// Elapsed wall-clock time of each repetition, in ns.
    pub samples: Vec<Time>,
}

impl FwqRun {
    /// Per-sample noise overhead: `elapsed - work` for each repetition.
    pub fn overheads(&self) -> Vec<Time> {
        self.samples.iter().map(|&s| s - self.work).collect()
    }

    /// Measured net noise fraction: total overhead / total elapsed.
    pub fn measured_noise_fraction(&self) -> f64 {
        let total: Time = self.samples.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let overhead: Time = self.overheads().iter().sum();
        overhead as f64 / total as f64
    }

    /// Summary statistics of the elapsed-time samples.
    pub fn summary(&self) -> Summary {
        Summary::of_u64(&self.samples)
    }

    /// Fraction of repetitions hit by any noise at all.
    pub fn hit_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let hit = self.samples.iter().filter(|&&s| s > self.work).count();
        hit as f64 / self.samples.len() as f64
    }
}

/// Run FWQ against `model` on `node`: `samples` repetitions of `work` ns.
pub fn fwq(model: &dyn NoiseModel, node: usize, seed: u64, work: Work, samples: usize) -> FwqRun {
    let streams = NodeStream::new(seed);
    let mut noise = model.instantiate(node, &streams);
    fwq_on(noise.as_mut(), work, samples)
}

/// Run FWQ against an already instantiated per-node process.
pub fn fwq_on(noise: &mut dyn NodeNoise, work: Work, samples: usize) -> FwqRun {
    assert!(work > 0, "FWQ work quantum must be positive");
    let mut out = Vec::with_capacity(samples);
    let mut t = 0;
    for _ in 0..samples {
        let end = noise.advance(t, work);
        out.push(end - t);
        t = end;
    }
    FwqRun { work, samples: out }
}

/// Result of an FTQ run: work completed in each fixed time quantum.
#[derive(Debug, Clone)]
pub struct FtqRun {
    /// The quantum length in ns.
    pub quantum: Time,
    /// Work completed (ns of CPU) within each quantum.
    pub samples: Vec<Work>,
}

impl FtqRun {
    /// Measured net noise fraction: 1 − total work / total time.
    pub fn measured_noise_fraction(&self) -> f64 {
        let total_time = self.quantum as u128 * self.samples.len() as u128;
        if total_time == 0 {
            return 0.0;
        }
        let total_work: u128 = self.samples.iter().map(|&w| w as u128).sum();
        1.0 - total_work as f64 / total_time as f64
    }

    /// Summary statistics of per-quantum completed work.
    pub fn summary(&self) -> Summary {
        Summary::of_u64(&self.samples)
    }

    /// The sampling rate in Hz (quanta per second).
    pub fn sample_rate_hz(&self) -> f64 {
        ghost_engine::time::period_to_hz(self.quantum)
    }

    /// Per-quantum *lost* work (`quantum - completed`), the series whose
    /// spectrum exposes injection frequency.
    pub fn lost(&self) -> Vec<Work> {
        self.samples.iter().map(|&w| self.quantum - w).collect()
    }
}

/// Run FTQ against `model` on `node`: `samples` quanta of `quantum` ns each.
pub fn ftq(
    model: &dyn NoiseModel,
    node: usize,
    seed: u64,
    quantum: Time,
    samples: usize,
) -> FtqRun {
    let streams = NodeStream::new(seed);
    let mut noise = model.instantiate(node, &streams);
    ftq_on(noise.as_mut(), quantum, samples)
}

/// Run FTQ against an already instantiated per-node process.
pub fn ftq_on(noise: &mut dyn NodeNoise, quantum: Time, samples: usize) -> FtqRun {
    assert!(quantum > 0, "FTQ quantum must be positive");
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples as u64 {
        let t0 = i * quantum;
        let t1 = t0 + quantum;
        out.push(noise.work_in(t0, t1));
    }
    FtqRun {
        quantum,
        samples: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NoNoise, PhasePolicy};
    use crate::signature::Signature;
    use ghost_engine::time::{MS, US};

    #[test]
    fn fwq_noiseless_is_flat() {
        let run = fwq(&NoNoise, 0, 1, MS, 100);
        assert!(run.samples.iter().all(|&s| s == MS));
        assert_eq!(run.measured_noise_fraction(), 0.0);
        assert_eq!(run.hit_fraction(), 0.0);
        assert!(run.overheads().iter().all(|&o| o == 0));
    }

    #[test]
    fn ftq_noiseless_is_full() {
        let run = ftq(&NoNoise, 0, 1, MS, 100);
        assert!(run.samples.iter().all(|&w| w == MS));
        assert_eq!(run.measured_noise_fraction(), 0.0);
        assert!(run.lost().iter().all(|&l| l == 0));
    }

    #[test]
    fn fwq_measures_injected_net_fraction() {
        for sig in crate::signature::canonical_2_5pct() {
            let m = sig.periodic_model(PhasePolicy::Aligned);
            let run = fwq(&m, 0, 1, MS, 5_000);
            let f = run.measured_noise_fraction();
            assert!((f - 0.025).abs() < 0.002, "{}: measured {f}", sig.label());
        }
    }

    #[test]
    fn ftq_measures_injected_net_fraction() {
        for sig in crate::signature::canonical_2_5pct() {
            let m = sig.periodic_model(PhasePolicy::Random);
            let run = ftq(&m, 3, 7, MS, 5_000);
            let f = run.measured_noise_fraction();
            assert!((f - 0.025).abs() < 0.002, "{}: measured {f}", sig.label());
        }
    }

    #[test]
    fn fwq_hit_fraction_scales_with_frequency() {
        // At 1 ms work quanta: 10 Hz noise hits ~1% of samples, 1000 Hz
        // noise hits essentially every sample.
        let low = Signature::new(10.0, 2500 * US).periodic_model(PhasePolicy::Aligned);
        let high = Signature::new(1000.0, 25 * US).periodic_model(PhasePolicy::Aligned);
        let run_low = fwq(&low, 0, 1, MS, 4_000);
        let run_high = fwq(&high, 0, 1, MS, 4_000);
        assert!(run_low.hit_fraction() < 0.05, "{}", run_low.hit_fraction());
        assert!(run_high.hit_fraction() > 0.9, "{}", run_high.hit_fraction());
    }

    #[test]
    fn fwq_overhead_magnitude_reflects_duration() {
        // Low-frequency long noise: rare but large overheads.
        let m = Signature::new(10.0, 2500 * US).periodic_model(PhasePolicy::Aligned);
        let run = fwq(&m, 0, 1, MS, 4_000);
        let max = *run.overheads().iter().max().unwrap();
        assert!(max >= 2500 * US, "max overhead {max}");
    }

    #[test]
    fn ftq_sample_rate() {
        let run = ftq(&NoNoise, 0, 1, MS, 10);
        assert!((run.sample_rate_hz() - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fwq_zero_work_panics() {
        fwq(&NoNoise, 0, 1, 0, 10);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn ftq_zero_quantum_panics() {
        ftq(&NoNoise, 0, 1, 0, 10);
    }
}
